//! Golden-file tests for the JSONL and Chrome exporters.
//!
//! The snapshot is built on a [`Recorder::fake`] clock with explicit
//! thread indices, so the rendered bytes are fully deterministic — no
//! wall-clock values ever reach the goldens. Regenerate after an
//! intentional format change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p gpumech-obs --test golden
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::path::Path;

use gpumech_obs::{to_chrome_trace, to_jsonl, Recorder, Snapshot};

/// A small but representative snapshot: nested spans with attributes, all
/// three metric kinds, and one span left open on a second thread (the
/// exporters must render it without an end timestamp).
fn golden_snapshot() -> Snapshot {
    let r = Recorder::fake(250);
    let root = r.start_span(
        "core.pipeline.analyze",
        vec![("name", "golden_kernel".into()), ("warps", 4usize.into())],
        None,
        0,
    );
    let child = r.start_span("mem.cachesim.simulate", Vec::new(), Some(root), 0);
    r.counter("mem.cachesim.l1_hits", 7);
    r.histogram("mem.cachesim.reqs_per_inst", 2.0);
    r.end_span(child);
    r.gauge("core.kmeans.inertia", 0.125);
    r.counter("core.kmeans.iterations", 3);
    r.end_span(root);
    let _open = r.start_span("timing.oracle.simulate", Vec::new(), None, 1);
    r.snapshot()
}

/// Compares `actual` against `tests/golden/<name>`, or rewrites the file
/// when `UPDATE_GOLDEN` is set.
fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} ({e}); run with UPDATE_GOLDEN=1"));
    assert_eq!(
        actual, expected,
        "golden mismatch for {name}; rerun with UPDATE_GOLDEN=1 after intentional changes"
    );
}

#[test]
fn jsonl_export_matches_golden() {
    check_golden("trace.jsonl", &to_jsonl(&golden_snapshot()));
}

#[test]
fn chrome_export_matches_golden() {
    check_golden("trace.chrome.json", &to_chrome_trace(&golden_snapshot()));
}

#[test]
fn jsonl_golden_lines_parse_and_use_valid_names() {
    let text = to_jsonl(&golden_snapshot());
    for line in text.lines() {
        let v = serde_json::parse_value(line)
            .unwrap_or_else(|e| panic!("unparsable JSONL line {line:?}: {e}"));
        for key in ["name"] {
            if let Some(serde::Value::Str(name)) = v.get_field(key) {
                assert!(
                    gpumech_obs::valid_metric_name(name),
                    "{name:?} violates the stage.subsystem.name scheme"
                );
            }
        }
    }
}

#[test]
fn chrome_golden_is_one_json_document() {
    let text = to_chrome_trace(&golden_snapshot());
    let v = serde_json::parse_value(text.trim()).expect("chrome trace parses as JSON");
    let Some(serde::Value::Array(events)) = v.get_field("traceEvents") else {
        panic!("traceEvents array missing");
    };
    assert!(!events.is_empty());
}
