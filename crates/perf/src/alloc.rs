//! Counting global allocator: per-scope allocation counts, bytes, and
//! peak live bytes, behind a single relaxed-load gate.
//!
//! [`CountingAlloc`] wraps [`System`] and is registered as the workspace
//! `#[global_allocator]` by this crate (every binary that links
//! `gpumech-perf` — the CLI, the bench harnesses, the fault suite — gets
//! it). While no [`AllocScope`] is open the allocator's only overhead is
//! one relaxed atomic load and a predicted branch per `alloc`/`dealloc`,
//! the same budget as a disabled obs probe; the counting RMWs happen only
//! while a scope is measuring.
//!
//! # Caveats (see DESIGN.md "Performance telemetry")
//!
//! * Counters are **process-global**: allocations from *other* threads
//!   running concurrently with a scope are attributed to it. The perf
//!   suite runs its stages sequentially on one thread, where the numbers
//!   are exact and deterministic.
//! * Nested scopes share the peak-tracking register: the peak is only
//!   reset when the outermost scope begins, so inner scopes report an
//!   upper bound.
//! * Frees of memory allocated *before* a scope began reduce net-live
//!   below the scope baseline; deltas saturate at zero rather than wrap.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of open [`AllocScope`]s; counting is active while nonzero.
static DEPTH: AtomicU64 = AtomicU64::new(0);
/// Total `alloc`/grow calls observed while counting.
static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
/// Total bytes requested while counting.
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
/// Total bytes freed while counting.
static FREED_BYTES: AtomicU64 = AtomicU64::new(0);
/// High-water mark of `ALLOC_BYTES - FREED_BYTES` (net live bytes).
static PEAK_NET: AtomicU64 = AtomicU64::new(0);

/// `true` while at least one [`AllocScope`] is measuring — the one
/// relaxed load every disabled-path allocation reduces to.
#[inline]
#[must_use]
pub fn counting_enabled() -> bool {
    DEPTH.load(Ordering::Relaxed) != 0
}

#[inline]
fn net_live() -> u64 {
    ALLOC_BYTES.load(Ordering::Relaxed).saturating_sub(FREED_BYTES.load(Ordering::Relaxed))
}

#[inline]
fn on_alloc(size: usize) {
    ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
    ALLOC_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    PEAK_NET.fetch_max(net_live(), Ordering::Relaxed);
}

#[inline]
fn on_free(size: usize) {
    FREED_BYTES.fetch_add(size as u64, Ordering::Relaxed);
}

/// [`System`] allocator wrapper that counts while a scope is open.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingAlloc;

// SAFETY: defers every allocation to `System` unchanged; the counters are
// plain relaxed atomics and never influence the returned pointers.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_enabled() {
            on_alloc(layout.size());
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if counting_enabled() {
            on_free(layout.size());
        }
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_enabled() {
            on_free(layout.size());
            on_alloc(new_size);
        }
        System.realloc(ptr, layout, new_size)
    }
}

/// Totals observed over one [`AllocScope`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocDelta {
    /// Allocation calls (including realloc grows).
    pub allocs: u64,
    /// Bytes requested.
    pub bytes: u64,
    /// Peak net live bytes above the scope's baseline.
    pub peak_live_bytes: u64,
}

/// RAII measurement window over the counting allocator.
///
/// `begin` snapshots the counters (and, for the outermost scope, resets
/// the peak register to the current net-live level); [`AllocScope::delta`]
/// reads the deltas. Dropping the scope — **including on unwind** — ends
/// the window, so a panicking stage can never leave counting enabled.
#[derive(Debug)]
pub struct AllocScope {
    calls0: u64,
    bytes0: u64,
    net0: u64,
}

impl AllocScope {
    /// Opens a measurement window.
    #[must_use]
    pub fn begin() -> Self {
        let calls0 = ALLOC_CALLS.load(Ordering::Relaxed);
        let bytes0 = ALLOC_BYTES.load(Ordering::Relaxed);
        let net0 = net_live();
        if DEPTH.fetch_add(1, Ordering::Relaxed) == 0 {
            PEAK_NET.store(net0, Ordering::Relaxed);
        }
        Self { calls0, bytes0, net0 }
    }

    /// Counter deltas since `begin`. Valid both mid-scope and from the
    /// value captured just before drop.
    #[must_use]
    pub fn delta(&self) -> AllocDelta {
        AllocDelta {
            allocs: ALLOC_CALLS.load(Ordering::Relaxed).saturating_sub(self.calls0),
            bytes: ALLOC_BYTES.load(Ordering::Relaxed).saturating_sub(self.bytes0),
            peak_live_bytes: PEAK_NET.load(Ordering::Relaxed).saturating_sub(self.net0),
        }
    }
}

impl Drop for AllocScope {
    fn drop(&mut self) {
        DEPTH.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use std::sync::{Mutex, PoisonError};

    /// The counters are process-global; serialize the tests that open
    /// scopes so their deltas don't bleed into each other.
    static SCOPE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn scope_counts_allocations_and_peak() {
        let _l = SCOPE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        assert!(!counting_enabled());
        let scope = AllocScope::begin();
        assert!(counting_enabled());
        let v: Vec<u8> = vec![0u8; 4096];
        drop(v);
        let w: Vec<u8> = vec![0u8; 1024];
        let d = scope.delta();
        drop(w);
        drop(scope);
        assert!(!counting_enabled());
        assert!(d.allocs >= 2, "two vecs → at least two allocs, got {}", d.allocs);
        assert!(d.bytes >= 5120, "bytes={} should cover both vecs", d.bytes);
        assert!(d.peak_live_bytes >= 4096, "peak={} should see the big vec", d.peak_live_bytes);
        assert!(d.peak_live_bytes < 1 << 30, "peak={} implausibly large", d.peak_live_bytes);
    }

    #[test]
    fn scope_closes_on_unwind() {
        let _l = SCOPE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        assert!(!counting_enabled());
        let result = std::panic::catch_unwind(|| {
            let _scope = AllocScope::begin();
            let _v: Vec<u8> = vec![0u8; 64];
            panic!("deliberate");
        });
        assert!(result.is_err());
        assert!(!counting_enabled(), "unwind must close the scope");
    }

    #[test]
    fn disabled_path_is_inert() {
        let _l = SCOPE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        assert!(!counting_enabled());
        let before = ALLOC_CALLS.load(Ordering::Relaxed);
        let v: Vec<u8> = vec![0u8; 2048];
        drop(v);
        let after = ALLOC_CALLS.load(Ordering::Relaxed);
        assert_eq!(before, after, "no scope open → no counting");
    }
}
