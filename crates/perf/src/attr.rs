//! Self-time vs. child-time attribution over the obs span tree, and the
//! folded-stack exporter.
//!
//! The obs recorder captures *inclusive* wall time per span. This module
//! turns that into *exclusive* (self) time — the quantity a flamegraph
//! plots — by subtracting each span's direct children from its own
//! duration, saturating at zero (children can nominally overrun their
//! parent by a clock quantum; unwound spans are closed by the RAII guard
//! and attribute normally, while spans still open at snapshot time have
//! no duration and are skipped).
//!
//! [`to_folded`] renders the classic flamegraph-collapsed format — one
//! `root;child;leaf <self_ns>` line per distinct stack, sorted — which
//! `flamegraph.pl`, speedscope, and inferno all consume directly.

use std::collections::BTreeMap;

use gpumech_obs::{Snapshot, SpanRecord};

/// Per-name attribution aggregate: how much wall time a span name holds
/// in total, and how much of that is its own (not delegated to children).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanAttribution {
    /// Span name (`stage.subsystem.name` scheme).
    pub name: &'static str,
    /// Closed spans aggregated under this name.
    pub count: u64,
    /// Inclusive wall time summed over those spans.
    pub total_ns: u64,
    /// Exclusive wall time: total minus direct children, saturating.
    pub self_ns: u64,
    /// Time delegated to direct children (`total - self`).
    pub child_ns: u64,
}

fn span_duration(s: &SpanRecord) -> Option<u64> {
    s.end_ns.map(|end| end.saturating_sub(s.start_ns))
}

/// Exclusive duration of each closed span, keyed by span id: inclusive
/// duration minus the sum of direct (closed) children, saturating at 0.
fn self_times(spans: &[SpanRecord]) -> BTreeMap<u64, u64> {
    let mut child_sum: BTreeMap<u64, u64> = BTreeMap::new();
    for s in spans {
        if let (Some(parent), Some(dur)) = (s.parent, span_duration(s)) {
            *child_sum.entry(parent).or_default() += dur;
        }
    }
    spans
        .iter()
        .filter_map(|s| {
            let dur = span_duration(s)?;
            let children = child_sum.get(&s.id).copied().unwrap_or(0);
            Some((s.id, dur.saturating_sub(children)))
        })
        .collect()
}

/// Aggregates self/total wall time by span name, sorted by descending
/// self time (ties broken by name for determinism).
#[must_use]
pub fn attribute(snap: &Snapshot) -> Vec<SpanAttribution> {
    let selfs = self_times(&snap.spans);
    let mut by_name: BTreeMap<&'static str, SpanAttribution> = BTreeMap::new();
    for s in &snap.spans {
        let Some(dur) = span_duration(s) else { continue };
        let self_ns = selfs.get(&s.id).copied().unwrap_or(0);
        let e = by_name.entry(s.name).or_insert(SpanAttribution {
            name: s.name,
            count: 0,
            total_ns: 0,
            self_ns: 0,
            child_ns: 0,
        });
        e.count += 1;
        e.total_ns += dur;
        e.self_ns += self_ns;
        e.child_ns += dur.saturating_sub(self_ns);
    }
    let mut out: Vec<SpanAttribution> = by_name.into_values().collect();
    out.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(b.name)));
    out
}

/// Renders the span tree in folded-stack (flamegraph-collapsed) format:
/// one `name;child;leaf <self_ns>` line per distinct root-to-span path,
/// value in nanoseconds of exclusive time, lines sorted by stack.
///
/// Open (unfinished) spans are skipped — their duration is unknown — but
/// closed spans *under* them still attribute with the open ancestor on
/// their path, so a leaked parent never hides its children's time.
#[must_use]
pub fn to_folded(snap: &Snapshot) -> String {
    let by_id: BTreeMap<u64, &SpanRecord> = snap.spans.iter().map(|s| (s.id, s)).collect();
    let selfs = self_times(&snap.spans);
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for s in &snap.spans {
        let Some(&self_ns) = selfs.get(&s.id) else { continue };
        let mut names: Vec<&str> = vec![s.name];
        let mut cursor = s.parent;
        while let Some(pid) = cursor {
            let Some(p) = by_id.get(&pid) else { break };
            names.push(p.name);
            cursor = p.parent;
        }
        names.reverse();
        *folded.entry(names.join(";")).or_default() += self_ns;
    }
    let mut out = String::new();
    for (stack, ns) in &folded {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use gpumech_obs::AttrValue;

    fn span(
        id: u64,
        parent: Option<u64>,
        name: &'static str,
        start_ns: u64,
        end_ns: Option<u64>,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name,
            attrs: Vec::<(&'static str, AttrValue)>::new(),
            thread: 0,
            start_ns,
            end_ns,
        }
    }

    fn snap_of(spans: Vec<SpanRecord>) -> Snapshot {
        Snapshot { spans, ..Snapshot::default() }
    }

    #[test]
    fn self_time_subtracts_direct_children() {
        let snap = snap_of(vec![
            span(1, None, "core.pipeline.analyze", 0, Some(1000)),
            span(2, Some(1), "mem.cachesim.simulate", 100, Some(400)),
            span(3, Some(1), "core.kmeans.cluster", 400, Some(700)),
            span(4, Some(2), "mem.cachesim.flush", 200, Some(300)),
        ]);
        let attrs = attribute(&snap);
        let get = |n: &str| attrs.iter().find(|a| a.name == n).unwrap();
        assert_eq!(get("core.pipeline.analyze").total_ns, 1000);
        assert_eq!(get("core.pipeline.analyze").self_ns, 400); // 1000 - 300 - 300
        assert_eq!(get("core.pipeline.analyze").child_ns, 600);
        assert_eq!(get("mem.cachesim.simulate").self_ns, 200); // 300 - 100
        assert_eq!(get("mem.cachesim.flush").self_ns, 100);
    }

    #[test]
    fn overrunning_children_saturate_not_underflow() {
        // A child nominally longer than its parent (clock quantum skew)
        // must yield self_ns == 0, never a wrapped huge number.
        let snap = snap_of(vec![
            span(1, None, "core.pipeline.analyze", 0, Some(100)),
            span(2, Some(1), "mem.cachesim.simulate", 0, Some(150)),
        ]);
        let attrs = attribute(&snap);
        let parent = attrs.iter().find(|a| a.name == "core.pipeline.analyze").unwrap();
        assert_eq!(parent.self_ns, 0);
        assert!(parent.self_ns <= parent.total_ns);
    }

    #[test]
    fn open_spans_are_skipped_but_children_keep_their_path() {
        let snap = snap_of(vec![
            span(1, None, "exec.batch.run", 0, None), // still open at snapshot
            span(2, Some(1), "core.pipeline.analyze", 10, Some(110)),
        ]);
        let attrs = attribute(&snap);
        assert!(attrs.iter().all(|a| a.name != "exec.batch.run"), "open span must not attribute");
        let folded = to_folded(&snap);
        assert_eq!(folded, "exec.batch.run;core.pipeline.analyze 100\n");
    }

    #[test]
    fn folded_merges_identical_stacks_and_sorts() {
        let snap = snap_of(vec![
            span(1, None, "exec.batch.run", 0, Some(500)),
            span(2, Some(1), "core.pipeline.analyze", 0, Some(100)),
            span(3, Some(1), "core.pipeline.analyze", 100, Some(350)),
        ]);
        let folded = to_folded(&snap);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            vec![
                "exec.batch.run 150", // 500 - 100 - 250
                "exec.batch.run;core.pipeline.analyze 350",
            ]
        );
    }

    #[test]
    fn attribution_orders_by_descending_self_time() {
        let snap = snap_of(vec![
            span(1, None, "core.pipeline.analyze", 0, Some(10)),
            span(2, None, "mem.cachesim.simulate", 0, Some(900)),
        ]);
        let attrs = attribute(&snap);
        assert_eq!(attrs[0].name, "mem.cachesim.simulate");
        assert_eq!(attrs[1].name, "core.pipeline.analyze");
    }
}
