//! Baseline persistence and noise-aware comparison for the perf suite.
//!
//! `gpumech perf record` serializes a [`Baseline`] (suite results plus
//! the git commit and machine-config fingerprint they were measured at)
//! to `results/PERF_BASELINE.json`; `gpumech perf compare` re-runs the
//! suite and fails on any regression beyond [`Tolerance`]. The tolerance
//! is disclosed in every comparison line: a stage regresses only when its
//! min-of-N time exceeds `base * (1 + rel) + abs_ns`, and its allocation
//! count exceeds `base * (1 + alloc_rel) + alloc_abs` — the relative term
//! absorbs CI-machine scaling, the absolute floor absorbs scheduler
//! jitter on microsecond-scale stages.

use serde::{Deserialize, Serialize};

use crate::suite::BenchResult;
use crate::PerfError;

/// Serialized baseline format version.
pub const BASELINE_VERSION: u32 = 1;

/// A recorded suite run: results plus provenance.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Baseline {
    /// Format version ([`BASELINE_VERSION`]).
    pub version: u32,
    /// `git rev-parse --short HEAD` at record time (or `"unknown"`).
    pub git_commit: String,
    /// Fingerprint of the machine configuration the suite ran against
    /// (`gpumech_exec::analysis_config_fingerprint` of Table I).
    pub config_fingerprint: u64,
    /// Timed iterations per stage at record time.
    pub iters: u32,
    /// Warmup iterations per stage at record time.
    pub warmup: u32,
    /// Per-stage measurements.
    pub results: Vec<BenchResult>,
}

impl Baseline {
    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serializer failures as [`PerfError::Format`].
    pub fn to_json(&self) -> Result<String, PerfError> {
        serde_json::to_string_pretty(self).map_err(|e| PerfError::Format(e.to_string()))
    }

    /// Parses a serialized baseline, rejecting unknown versions.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::Format`] on malformed JSON or a version this
    /// build does not understand.
    pub fn from_json(text: &str) -> Result<Self, PerfError> {
        let b: Baseline =
            serde_json::from_str(text).map_err(|e| PerfError::Format(e.to_string()))?;
        if b.version != BASELINE_VERSION {
            return Err(PerfError::Format(format!(
                "baseline version {} unsupported (this build reads {BASELINE_VERSION})",
                b.version
            )));
        }
        Ok(b)
    }
}

/// Noise tolerance for [`compare`]. The defaults are the documented CI
/// gate: 40% relative + 2 ms absolute on wall time, 10% relative + 256
/// calls absolute on allocation count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Relative wall-time headroom (0.40 = +40%).
    pub rel: f64,
    /// Absolute wall-time floor, nanoseconds.
    pub abs_ns: u64,
    /// Relative allocation-count headroom.
    pub alloc_rel: f64,
    /// Absolute allocation-count floor.
    pub alloc_abs: u64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Self { rel: 0.40, abs_ns: 2_000_000, alloc_rel: 0.10, alloc_abs: 256 }
    }
}

#[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn threshold(base: u64, rel: f64, abs: u64) -> u64 {
    let scaled = (base as f64 * (1.0 + rel)).ceil();
    let scaled = if scaled.is_finite() && scaled >= 0.0 { scaled as u64 } else { u64::MAX };
    scaled.saturating_add(abs)
}

/// One stage's comparison verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareLine {
    /// Stage name.
    pub name: String,
    /// Baseline min wall time, ns.
    pub base_ns: u64,
    /// Current min wall time, ns.
    pub cur_ns: u64,
    /// Wall-time threshold the stage had to stay under, ns.
    pub limit_ns: u64,
    /// Baseline allocation count.
    pub base_allocs: u64,
    /// Current allocation count.
    pub cur_allocs: u64,
    /// Allocation-count threshold.
    pub limit_allocs: u64,
    /// Whether the stage regressed on either axis.
    pub regressed: bool,
}

/// Full comparison outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Per-stage verdicts, baseline order.
    pub lines: Vec<CompareLine>,
    /// Stages in the baseline but missing from the current run.
    pub missing: Vec<String>,
    /// Stages in the current run but absent from the baseline (reported,
    /// never failed on — new benchmarks must be recordable first).
    pub unbaselined: Vec<String>,
    /// The tolerance applied.
    pub tolerance: Tolerance,
}

impl Comparison {
    /// Number of regressed stages plus baseline stages that vanished.
    #[must_use]
    pub fn regressions(&self) -> usize {
        self.lines.iter().filter(|l| l.regressed).count() + self.missing.len()
    }

    /// Human-readable report, one line per stage, tolerance disclosed.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "# perf compare (tolerance: +{:.0}% +{:.1}ms wall, +{:.0}% +{} allocs)\n\
             {:<12}{:>12}{:>12}{:>12}{:>10}{:>10}  verdict\n",
            self.tolerance.rel * 100.0,
            self.tolerance.abs_ns as f64 / 1e6,
            self.tolerance.alloc_rel * 100.0,
            self.tolerance.alloc_abs,
            "stage",
            "base",
            "current",
            "limit",
            "allocs",
            "limit",
        );
        for l in &self.lines {
            out.push_str(&format!(
                "{:<12}{:>12}{:>12}{:>12}{:>10}{:>10}  {}\n",
                l.name,
                format_ns(l.base_ns),
                format_ns(l.cur_ns),
                format_ns(l.limit_ns),
                l.cur_allocs,
                l.limit_allocs,
                if l.regressed { "REGRESSED" } else { "ok" },
            ));
        }
        for name in &self.missing {
            out.push_str(&format!("{name:<12}  REGRESSED: missing from current run\n"));
        }
        for name in &self.unbaselined {
            out.push_str(&format!("{name:<12}  note: not in baseline (re-record to gate it)\n"));
        }
        out
    }
}

fn format_ns(ns: u64) -> String {
    #[allow(clippy::cast_precision_loss)]
    let v = ns as f64;
    if v >= 1e9 {
        format!("{:.2}s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}us", v / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Compares a fresh suite run against a recorded baseline.
#[must_use]
pub fn compare(base: &Baseline, current: &[BenchResult], tol: Tolerance) -> Comparison {
    let mut lines = Vec::with_capacity(base.results.len());
    let mut missing = Vec::new();
    for b in &base.results {
        let Some(c) = current.iter().find(|r| r.name == b.name) else {
            missing.push(b.name.clone());
            continue;
        };
        let limit_ns = threshold(b.min_ns, tol.rel, tol.abs_ns);
        let limit_allocs = threshold(b.allocs, tol.alloc_rel, tol.alloc_abs);
        lines.push(CompareLine {
            name: b.name.clone(),
            base_ns: b.min_ns,
            cur_ns: c.min_ns,
            limit_ns,
            base_allocs: b.allocs,
            cur_allocs: c.allocs,
            limit_allocs,
            regressed: c.min_ns > limit_ns || c.allocs > limit_allocs,
        });
    }
    let unbaselined = current
        .iter()
        .filter(|c| base.results.iter().all(|b| b.name != c.name))
        .map(|c| c.name.clone())
        .collect();
    Comparison { lines, missing, unbaselined, tolerance: tol }
}

/// `git rev-parse --short=12 HEAD` of the working directory, `"unknown"`
/// when git is unavailable (builds from a tarball, stripped containers).
#[must_use]
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn result(name: &str, min_ns: u64, allocs: u64) -> BenchResult {
        BenchResult {
            name: name.to_string(),
            min_ns,
            mean_ns: min_ns,
            iters: 5,
            allocs,
            alloc_bytes: allocs * 64,
            peak_live_bytes: allocs * 32,
        }
    }

    fn baseline(results: Vec<BenchResult>) -> Baseline {
        Baseline {
            version: BASELINE_VERSION,
            git_commit: "abc123def456".to_string(),
            config_fingerprint: 42,
            iters: 5,
            warmup: 2,
            results,
        }
    }

    #[test]
    fn json_round_trips() {
        let b = baseline(vec![result("trace", 1_000_000, 500)]);
        let parsed = Baseline::from_json(&b.to_json().unwrap()).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut b = baseline(vec![]);
        b.version = 99;
        let err = Baseline::from_json(&b.to_json().unwrap()).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
    }

    #[test]
    fn within_tolerance_passes_beyond_fails() {
        let base = baseline(vec![result("trace", 10_000_000, 1000)]);
        let tol = Tolerance { rel: 0.40, abs_ns: 2_000_000, alloc_rel: 0.10, alloc_abs: 256 };
        // limit = 10ms * 1.4 + 2ms = 16ms
        let ok = compare(&base, &[result("trace", 15_999_999, 1000)], tol);
        assert_eq!(ok.regressions(), 0, "{}", ok.render());
        let slow = compare(&base, &[result("trace", 16_000_002, 1000)], tol);
        assert_eq!(slow.regressions(), 1, "{}", slow.render());
        // alloc limit = 1000 * 1.1 + 256 = 1356
        let leaky = compare(&base, &[result("trace", 10_000_000, 1400)], tol);
        assert_eq!(leaky.regressions(), 1, "{}", leaky.render());
    }

    #[test]
    fn missing_stage_counts_as_regression_unbaselined_does_not() {
        let base = baseline(vec![result("trace", 1_000, 10)]);
        let cmp = compare(&base, &[result("analyze", 1_000, 10)], Tolerance::default());
        assert_eq!(cmp.missing, vec!["trace".to_string()]);
        assert_eq!(cmp.unbaselined, vec!["analyze".to_string()]);
        assert_eq!(cmp.regressions(), 1);
        assert!(cmp.render().contains("missing from current run"));
    }

    #[test]
    fn render_discloses_the_tolerance() {
        let base = baseline(vec![result("trace", 1_000_000, 10)]);
        let cmp = compare(&base, &[result("trace", 1_000_000, 10)], Tolerance::default());
        let text = cmp.render();
        assert!(text.contains("+40% +2.0ms wall"), "{text}");
        assert!(text.contains("+10% +256 allocs"), "{text}");
    }
}
