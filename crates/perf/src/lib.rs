//! Continuous performance telemetry for the GPUMech pipeline, layered on
//! `gpumech-obs` with no dependency outside the workspace.
//!
//! Four pieces (see DESIGN.md "Performance telemetry"):
//!
//! * **Attribution** ([`attribute`], [`to_folded`]) — turns the obs span
//!   tree's inclusive wall times into exclusive (self) times and renders
//!   the folded-stack format flamegraph tooling consumes
//!   (`gpumech profile --folded-out`).
//! * **Allocation tracking** ([`CountingAlloc`], [`AllocScope`]) — a
//!   counting `#[global_allocator]` wrapper (registered by this crate for
//!   every binary that links it) surfacing per-stage allocation counts,
//!   bytes, and peak live bytes; one relaxed load per allocation while
//!   disabled.
//! * **The perf suite** ([`run_suite`]) — named stage-level and
//!   end-to-end micro-benchmarks (min-of-N with warmup, allocation
//!   counters included) emitting under the `perf.*` naming family.
//! * **Baselines** ([`Baseline`], [`compare`]) — `gpumech perf record`
//!   persists suite results to `results/PERF_BASELINE.json`;
//!   `gpumech perf compare` fails CI on noise-aware regressions.

pub mod alloc;
pub mod attr;
pub mod baseline;
pub mod suite;

pub use alloc::{counting_enabled, AllocDelta, AllocScope, CountingAlloc};
pub use attr::{attribute, to_folded, SpanAttribution};
pub use baseline::{compare, git_commit, Baseline, CompareLine, Comparison, Tolerance};
pub use suite::{run_suite, suite_config, BenchResult, SuiteOptions, STAGE_NAMES, SUITE_KERNEL};

/// The counting allocator is installed process-wide here, so every
/// binary linking `gpumech-perf` (the CLI, bench harnesses, fault suite)
/// measures with the same allocator it ships with.
#[global_allocator]
static GLOBAL_COUNTING_ALLOC: CountingAlloc = CountingAlloc;

/// Error surfaced by the perf subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PerfError {
    /// A pipeline layer failed while benchmarking it.
    Pipeline(String),
    /// A baseline file was malformed or from an unsupported version.
    Format(String),
}

impl std::fmt::Display for PerfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PerfError::Pipeline(e) => write!(f, "perf suite pipeline failure: {e}"),
            PerfError::Format(e) => write!(f, "perf baseline format error: {e}"),
        }
    }
}

impl std::error::Error for PerfError {}
