//! The named micro-benchmark suite behind `gpumech perf record|compare`.
//!
//! Each stage benchmark isolates one pipeline layer (tracing, cache
//! simulation + interval analysis, clustering + prediction, the timing
//! oracle) plus an end-to-end run, on a fixed small workload so the whole
//! suite finishes in seconds. Timing is min-of-N with warmup — the
//! minimum is the noise-robust estimator for a deterministic computation
//! — and a separate untimed pass under an [`AllocScope`] captures
//! allocation count, bytes, and peak live bytes without polluting the
//! timed iterations with counting overhead.
//!
//! When a recorder is installed, every stage runs inside a
//! `perf.suite.<stage>` span and surfaces its counters under the
//! `perf.*` naming family (`perf.alloc.count`, `perf.alloc.bytes`,
//! `perf.alloc.peak_live`, `perf.bench.min_ns`), attributed to the stage
//! span via the sample's span id.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gpumech_core::{Gpumech, PredictionRequest};
use gpumech_exec::{BatchEngine, BatchJob, ProfileCache};
use gpumech_isa::{SchedulingPolicy, SimConfig};
use gpumech_timing::simulate;
use gpumech_trace::workloads;
use serde::{Deserialize, Serialize};

use crate::alloc::AllocScope;
use crate::PerfError;

/// Workload every stage benchmark runs on: small enough that the full
/// suite stays in CI budget, big enough to exercise every pipeline layer.
pub const SUITE_KERNEL: &str = "sdk_vectoradd";
/// Grid size for [`SUITE_KERNEL`].
pub const SUITE_BLOCKS: usize = 8;

/// The benchmark names `gpumech perf record` runs, in order.
pub const STAGE_NAMES: [&str; 5] = ["trace", "analyze", "predict", "oracle", "e2e_batch"];

/// Obs span names for the stages, `perf.suite.<stage>` (span names must
/// be `&'static str` literals, hence the parallel table).
const STAGE_SPANS: [&str; 5] = [
    "perf.suite.trace",
    "perf.suite.analyze",
    "perf.suite.predict",
    "perf.suite.oracle",
    "perf.suite.e2e_batch",
];

/// How the suite runs: iteration counts and optional injected slowdowns.
#[derive(Debug, Clone)]
pub struct SuiteOptions {
    /// Timed iterations per stage (the minimum is reported).
    pub iters: u32,
    /// Untimed warmup iterations per stage.
    pub warmup: u32,
    /// Injected sleep per stage, `(stage_name, millis)` — the fault hook
    /// the perf-gate acceptance test uses to force a regression.
    pub slow: Vec<(String, u64)>,
}

impl Default for SuiteOptions {
    fn default() -> Self {
        Self { iters: 5, warmup: 2, slow: Vec::new() }
    }
}

impl SuiteOptions {
    fn injected_sleep(&self, stage: &str) -> Option<Duration> {
        self.slow
            .iter()
            .find(|(name, _)| name == stage)
            .map(|&(_, ms)| Duration::from_millis(ms))
    }
}

/// One stage's measurement: min-of-N wall time plus allocation counters.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct BenchResult {
    /// Stage name (one of [`STAGE_NAMES`]).
    pub name: String,
    /// Minimum wall time over the timed iterations, nanoseconds.
    pub min_ns: u64,
    /// Mean wall time over the timed iterations, nanoseconds.
    pub mean_ns: u64,
    /// Timed iterations.
    pub iters: u32,
    /// Allocation calls in one representative iteration.
    pub allocs: u64,
    /// Bytes requested in one representative iteration.
    pub alloc_bytes: u64,
    /// Peak live bytes above baseline in one representative iteration.
    pub peak_live_bytes: u64,
}

#[allow(clippy::cast_possible_truncation)]
fn dur_ns(d: Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Runs one stage: warmup, an alloc-counting pass, then `iters` timed
/// iterations (with any injected sleep added inside the timed region).
fn run_stage<T>(
    name: &'static str,
    span_name: &'static str,
    opts: &SuiteOptions,
    mut f: impl FnMut() -> Result<T, PerfError>,
) -> Result<BenchResult, PerfError> {
    let _span = gpumech_obs::SpanGuard::enter(span_name, Vec::new());
    for _ in 0..opts.warmup {
        std::hint::black_box(f()?);
    }
    let scope = AllocScope::begin();
    std::hint::black_box(f()?);
    let alloc = scope.delta();
    drop(scope);

    let sleep = opts.injected_sleep(name);
    let mut min = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..opts.iters.max(1) {
        let t0 = Instant::now();
        if let Some(d) = sleep {
            std::thread::sleep(d);
        }
        std::hint::black_box(f()?);
        let dt = t0.elapsed();
        min = min.min(dt);
        total += dt;
    }
    let min_ns = dur_ns(min);
    gpumech_obs::counter!("perf.alloc.count", alloc.allocs);
    gpumech_obs::counter!("perf.alloc.bytes", alloc.bytes);
    gpumech_obs::gauge!("perf.alloc.peak_live", alloc.peak_live_bytes as f64);
    gpumech_obs::histogram!("perf.bench.min_ns", min_ns as f64);
    Ok(BenchResult {
        name: name.to_string(),
        min_ns,
        mean_ns: dur_ns(total / opts.iters.max(1)),
        iters: opts.iters.max(1),
        allocs: alloc.allocs,
        alloc_bytes: alloc.bytes,
        peak_live_bytes: alloc.peak_live_bytes,
    })
}

/// The machine configuration the suite benchmarks against (Table I).
#[must_use]
pub fn suite_config() -> SimConfig {
    SimConfig::table1()
}

/// Runs the full suite and returns one [`BenchResult`] per stage, in
/// [`STAGE_NAMES`] order.
///
/// # Errors
///
/// Returns [`PerfError::Pipeline`] if any pipeline layer fails — the
/// bundled suite workload is expected to model cleanly, so a failure
/// means the pipeline itself is broken.
pub fn run_suite(opts: &SuiteOptions) -> Result<Vec<BenchResult>, PerfError> {
    let w = workloads::by_name(SUITE_KERNEL)
        .ok_or_else(|| PerfError::Pipeline(format!("suite kernel {SUITE_KERNEL:?} missing")))?
        .with_blocks(SUITE_BLOCKS);
    let cfg = suite_config();
    fn stage_err(stage: &str, e: impl std::fmt::Display) -> PerfError {
        PerfError::Pipeline(format!("{stage}: {e}"))
    }

    let mut results = Vec::with_capacity(STAGE_NAMES.len());

    // Stage inputs are prepared once, outside the timed closures.
    results.push(run_stage("trace", STAGE_SPANS[0], opts, || {
        w.trace().map_err(|e| stage_err("trace", e))
    })?);

    let trace = Arc::new(w.trace().map_err(|e| stage_err("trace", e))?);
    let model = Gpumech::new(cfg.clone());

    results.push(run_stage("analyze", STAGE_SPANS[1], opts, || {
        model.analyze(&trace).map_err(|e| stage_err("analyze", e))
    })?);

    let analysis = model.analyze(&trace).map_err(|e| stage_err("analyze", e))?;
    results.push(run_stage("predict", STAGE_SPANS[2], opts, || {
        model
            .run(&PredictionRequest::from_analysis(&analysis))
            .map_err(|e| stage_err("predict", e))
    })?);

    results.push(run_stage("oracle", STAGE_SPANS[3], opts, || {
        simulate(&trace, &cfg, SchedulingPolicy::RoundRobin).map_err(|e| stage_err("oracle", e))
    })?);

    // End to end through the batch engine (admission, cache, pool) — the
    // path `gpumech batch` and `gpumech serve` take. A fresh in-memory
    // cache per iteration keeps the work constant across iterations.
    results.push(run_stage("e2e_batch", STAGE_SPANS[4], opts, || {
        let engine = BatchEngine::with_cache(1, ProfileCache::in_memory());
        let job = BatchJob::new(SUITE_KERNEL.to_string(), Arc::clone(&trace), cfg.clone());
        let out = engine.run(&[job]);
        match out.into_iter().next() {
            Some(Ok(p)) => Ok(p),
            Some(Err(e)) => Err(PerfError::Pipeline(format!("e2e_batch: {e}"))),
            None => Err(PerfError::Pipeline("e2e_batch: engine returned no result".to_string())),
        }
    })?);

    Ok(results)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn suite_runs_every_stage_quickly() {
        let opts = SuiteOptions { iters: 1, warmup: 0, slow: Vec::new() };
        let results = run_suite(&opts).unwrap();
        assert_eq!(results.len(), STAGE_NAMES.len());
        for (r, name) in results.iter().zip(STAGE_NAMES) {
            assert_eq!(r.name, name);
            assert!(r.min_ns > 0, "{name}: zero wall time is implausible");
            assert!(r.min_ns <= r.mean_ns, "{name}: min must not exceed mean");
            assert!(r.allocs > 0, "{name}: the pipeline allocates");
        }
    }

    #[test]
    fn injected_sleep_inflates_the_named_stage_only() {
        let base = run_suite(&SuiteOptions { iters: 1, warmup: 0, slow: Vec::new() }).unwrap();
        let slowed = run_suite(&SuiteOptions {
            iters: 1,
            warmup: 0,
            slow: vec![("predict".to_string(), 50)],
        })
        .unwrap();
        let b = base.iter().find(|r| r.name == "predict").unwrap();
        let s = slowed.iter().find(|r| r.name == "predict").unwrap();
        assert!(
            s.min_ns >= b.min_ns + 40_000_000,
            "slowed predict ({}) should exceed base ({}) by ~50ms",
            s.min_ns,
            b.min_ns
        );
    }
}
