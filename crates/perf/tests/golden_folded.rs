//! Golden-file test for the folded-stack exporter, on a fake clock so
//! the rendered bytes are fully deterministic. Regenerate after an
//! intentional format change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p gpumech-perf --test golden_folded
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::path::Path;

use gpumech_obs::{Recorder, Snapshot};
use gpumech_perf::{attribute, to_folded};

/// Deterministic span tree on a fake clock advancing 250 ns per
/// observation: a root with two children (one nested two deep, one
/// repeated), plus a span left open to prove the exporter skips it while
/// keeping its children's path intact.
fn golden_snapshot() -> Snapshot {
    let r = Recorder::fake(250);
    let root = r.start_span("exec.batch.run", Vec::new(), None, 0);
    let analyze = r.start_span("core.pipeline.analyze", Vec::new(), Some(root), 0);
    let cache = r.start_span("mem.cachesim.simulate", Vec::new(), Some(analyze), 0);
    r.end_span(cache);
    r.end_span(analyze);
    let kmeans = r.start_span("core.kmeans.cluster", Vec::new(), Some(root), 0);
    r.end_span(kmeans);
    let kmeans2 = r.start_span("core.kmeans.cluster", Vec::new(), Some(root), 0);
    r.end_span(kmeans2);
    r.end_span(root);
    let open = r.start_span("timing.oracle.simulate", Vec::new(), None, 1);
    let under_open = r.start_span("timing.oracle.drain", Vec::new(), Some(open), 1);
    r.end_span(under_open);
    r.snapshot()
}

fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} ({e}); run with UPDATE_GOLDEN=1"));
    assert_eq!(
        actual, expected,
        "golden mismatch for {name}; rerun with UPDATE_GOLDEN=1 after intentional changes"
    );
}

#[test]
fn folded_export_matches_golden() {
    check_golden("trace.folded", &to_folded(&golden_snapshot()));
}

#[test]
fn folded_golden_schema_holds() {
    // Every line is `name(;name)* <uint>` with scheme-valid frame names —
    // the same contract `gpumech obs-validate --folded` enforces.
    let text = to_folded(&golden_snapshot());
    assert!(!text.is_empty());
    for line in text.lines() {
        let (stack, value) = line.rsplit_once(' ').expect("line has a value column");
        assert!(value.parse::<u64>().is_ok(), "value {value:?} not a u64 in {line:?}");
        for frame in stack.split(';') {
            assert!(
                gpumech_obs::valid_metric_name(frame),
                "frame {frame:?} violates the stage.subsystem.name scheme"
            );
        }
    }
}

#[test]
fn golden_attribution_is_consistent_with_folded_totals() {
    let snap = golden_snapshot();
    let attrs = attribute(&snap);
    let folded = to_folded(&snap);
    // Self time summed per leaf name across folded lines equals the
    // attribution's per-name self time.
    for a in &attrs {
        let folded_sum: u64 = folded
            .lines()
            .filter_map(|l| l.rsplit_once(' '))
            .filter(|(stack, _)| stack.rsplit(';').next() == Some(a.name))
            .filter_map(|(_, v)| v.parse::<u64>().ok())
            .sum();
        assert_eq!(folded_sum, a.self_ns, "{}: folded vs attribution disagree", a.name);
        assert!(a.self_ns <= a.total_ns);
        assert_eq!(a.child_ns, a.total_ns - a.self_ns);
    }
}
