//! The service API: JSON request bodies, typed API errors, and the
//! response rendering shared by the server and its tests.
//!
//! Every failure mode is a first-class [`ApiError`] carrying the HTTP
//! status, a stable machine-readable `code`, a human message, and (for
//! analysis rejections) the verifier findings — per the project's rule
//! that model degradation is surfaced, never silent.

use gpumech_core::Prediction;
use gpumech_exec::canonical_prediction_json;
use serde::Value;

use crate::http::Response;

/// A parsed `POST /predict` body.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PredictBody {
    /// Workload name from the bundled catalogue (required).
    pub kernel: String,
    /// Grid-size override.
    pub blocks: Option<usize>,
    /// Resident warps per core.
    pub warps: Option<usize>,
    /// MSHR entries per core.
    pub mshrs: Option<usize>,
    /// DRAM bandwidth in GB/s.
    pub bw: Option<f64>,
    /// SFU lanes per core.
    pub sfu: Option<usize>,
    /// Scheduling policy (`rr` | `gto`).
    pub policy: Option<String>,
    /// Table II model (`naive` | `markov` | `mt` | `mt_mshr` | `full`).
    pub model: Option<String>,
    /// Representative selection (`max` | `min` | `clustering` | `weighted`).
    pub selection: Option<String>,
    /// Per-request deadline in milliseconds (capped by the server).
    pub deadline_ms: Option<u64>,
    /// Debug-only artificial service time; honored only when the server
    /// was started with debug hooks enabled (deterministic load tests).
    pub hold_ms: Option<u64>,
}

/// A typed service-level failure: everything the response needs.
#[derive(Debug, Clone)]
pub struct ApiError {
    /// HTTP status to respond with.
    pub status: u16,
    /// Stable machine-readable error code.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
    /// Static-verifier findings (422 analysis rejections only).
    pub findings: Vec<String>,
    /// Suggested client backoff, sent as `Retry-After` (seconds) plus a
    /// millisecond-precision `x-retry-after-ms` header.
    pub retry_after_ms: Option<u64>,
}

impl ApiError {
    /// A plain error with no findings and no retry hint.
    #[must_use]
    pub fn new(status: u16, code: &'static str, message: impl Into<String>) -> Self {
        ApiError { status, code, message: message.into(), findings: Vec::new(), retry_after_ms: None }
    }

    /// Attaches a retry hint.
    #[must_use]
    pub fn with_retry_after_ms(mut self, ms: u64) -> Self {
        self.retry_after_ms = Some(ms);
        self
    }

    /// Attaches verifier findings.
    #[must_use]
    pub fn with_findings(mut self, findings: Vec<String>) -> Self {
        self.findings = findings;
        self
    }

    /// Renders the error as its HTTP response.
    #[must_use]
    pub fn response(&self) -> Response {
        let mut body = format!(
            "{{\"error\":{},\"message\":{}",
            json_str(self.code),
            json_str(&self.message)
        );
        if !self.findings.is_empty() {
            body.push_str(",\"findings\":[");
            for (i, f) in self.findings.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(&json_str(f));
            }
            body.push(']');
        }
        if let Some(ms) = self.retry_after_ms {
            body.push_str(&format!(",\"retry_after_ms\":{ms}"));
        }
        body.push('}');
        let mut resp = Response::json(self.status, body);
        if let Some(ms) = self.retry_after_ms {
            // Retry-After is whole seconds per RFC 9110; keep at least 1
            // so "shed but retry immediately" never reads as "no hint".
            resp = resp
                .with_header("retry-after", ms.div_ceil(1000).max(1))
                .with_header("x-retry-after-ms", ms);
        }
        resp
    }
}

/// JSON string literal for `s` (delegates to the vendored serializer so
/// escaping matches every other export in the workspace).
fn json_str(s: &str) -> String {
    serde_json::to_string(&s.to_string()).unwrap_or_else(|_| "\"\"".to_string())
}

/// Extracts a string field.
fn str_field(v: &Value, name: &'static str) -> Result<Option<String>, ApiError> {
    match v.get_field(name) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(other) => Err(bad_field(name, "string", other)),
    }
}

/// Extracts an unsigned integer field.
fn uint_field(v: &Value, name: &'static str) -> Result<Option<u64>, ApiError> {
    match v.get_field(name) {
        None | Some(Value::Null) => Ok(None),
        Some(other) => other.as_u64().map(Some).ok_or_else(|| {
            bad_field(name, "non-negative integer", other)
        }),
    }
}

/// Extracts a number field.
fn num_field(v: &Value, name: &'static str) -> Result<Option<f64>, ApiError> {
    match v.get_field(name) {
        None | Some(Value::Null) => Ok(None),
        Some(other) => other
            .as_f64()
            .map(Some)
            .ok_or_else(|| bad_field(name, "number", other)),
    }
}

fn bad_field(name: &str, expected: &str, got: &Value) -> ApiError {
    ApiError::new(
        400,
        "bad_field",
        format!("field `{name}` must be a {expected}, got {}", got.kind()),
    )
}

/// Field names `POST /predict` accepts; anything else is a typo worth a
/// typed 400 rather than a silently ignored knob.
const PREDICT_FIELDS: [&str; 11] = [
    "kernel", "blocks", "warps", "mshrs", "bw", "sfu", "policy", "model", "selection",
    "deadline_ms", "hold_ms",
];

/// Parses and validates a `POST /predict` JSON body.
///
/// # Errors
///
/// A 400 [`ApiError`] for non-JSON bodies, non-object roots, unknown
/// fields, wrong field types, or a missing `kernel`.
pub fn parse_predict_body(body: &[u8]) -> Result<PredictBody, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::new(400, "bad_json", "request body is not UTF-8"))?;
    let value = serde_json::parse_value(text)
        .map_err(|e| ApiError::new(400, "bad_json", format!("request body is not JSON: {e}")))?;
    let Value::Object(pairs) = &value else {
        return Err(ApiError::new(400, "bad_json", "request body must be a JSON object"));
    };
    if let Some((unknown, _)) = pairs.iter().find(|(k, _)| !PREDICT_FIELDS.contains(&k.as_str()))
    {
        return Err(ApiError::new(400, "unknown_field", format!("unknown field `{unknown}`")));
    }
    let kernel = str_field(&value, "kernel")?
        .ok_or_else(|| ApiError::new(400, "missing_field", "field `kernel` is required"))?;
    let as_usize = |n: Option<u64>, name: &'static str| -> Result<Option<usize>, ApiError> {
        n.map(|v| {
            usize::try_from(v)
                .map_err(|_| ApiError::new(400, "bad_field", format!("field `{name}` too large")))
        })
        .transpose()
    };
    Ok(PredictBody {
        kernel,
        blocks: as_usize(uint_field(&value, "blocks")?, "blocks")?,
        warps: as_usize(uint_field(&value, "warps")?, "warps")?,
        mshrs: as_usize(uint_field(&value, "mshrs")?, "mshrs")?,
        bw: num_field(&value, "bw")?,
        sfu: as_usize(uint_field(&value, "sfu")?, "sfu")?,
        policy: str_field(&value, "policy")?,
        model: str_field(&value, "model")?,
        selection: str_field(&value, "selection")?,
        deadline_ms: uint_field(&value, "deadline_ms")?,
        hold_ms: uint_field(&value, "hold_ms")?,
    })
}

/// The `POST /predict` success body: headline numbers, first-class model
/// warnings, and the full canonical prediction.
///
/// The embedded prediction is [`canonical_prediction_json`] — wall-clock
/// stage timings zeroed and environmental `cache: ` warnings stripped —
/// so a served response is *byte-identical* to one computed sequentially
/// in-process from the same inputs. The load-shed suite relies on that.
///
/// # Errors
///
/// Propagates serialization failure as a 500 [`ApiError`] (unreachable
/// for predictions produced by this workspace).
pub fn predict_response_body(kernel: &str, p: &Prediction) -> Result<String, ApiError> {
    let canonical = canonical_prediction_json(p)
        .map_err(|e| ApiError::new(500, "serialize_failed", e.to_string()))?;
    let cpi = serde_json::to_string(&p.cpi_total())
        .map_err(|e| ApiError::new(500, "serialize_failed", e.to_string()))?;
    let ipc = serde_json::to_string(&p.ipc())
        .map_err(|e| ApiError::new(500, "serialize_failed", e.to_string()))?;
    let mut warnings = String::from("[");
    for (i, w) in p.warnings.iter().filter(|w| !w.starts_with("cache: ")).enumerate() {
        if i > 0 {
            warnings.push(',');
        }
        warnings.push_str(&json_str(w));
    }
    warnings.push(']');
    Ok(format!(
        "{{\"kernel\":{},\"cpi\":{cpi},\"ipc\":{ipc},\"warnings\":{warnings},\"prediction\":{canonical}}}",
        json_str(kernel)
    ))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_body() {
        let body = parse_predict_body(
            br#"{"kernel":"bfs_kernel1","blocks":4,"bw":96.0,"policy":"gto","deadline_ms":250}"#,
        )
        .unwrap();
        assert_eq!(body.kernel, "bfs_kernel1");
        assert_eq!(body.blocks, Some(4));
        assert_eq!(body.bw, Some(96.0));
        assert_eq!(body.policy.as_deref(), Some("gto"));
        assert_eq!(body.deadline_ms, Some(250));
        assert_eq!(body.warps, None);
    }

    #[test]
    fn typed_body_rejections() {
        for (raw, code) in [
            (&b"not json"[..], "bad_json"),
            (b"[1,2]", "bad_json"),
            (b"{}", "missing_field"),
            (br#"{"kernel":"x","bogus":1}"#, "unknown_field"),
            (br#"{"kernel":7}"#, "bad_field"),
            (br#"{"kernel":"x","blocks":-1}"#, "bad_field"),
        ] {
            let err = parse_predict_body(raw).unwrap_err();
            assert_eq!(err.status, 400, "{}", String::from_utf8_lossy(raw));
            assert_eq!(err.code, code, "{}", String::from_utf8_lossy(raw));
        }
    }

    #[test]
    fn error_response_carries_retry_after_and_findings() {
        let err = ApiError::new(429, "shed", "queue full")
            .with_retry_after_ms(2500)
            .with_findings(vec!["f1".to_string()]);
        let resp = err.response();
        assert_eq!(resp.status, 429);
        let body = String::from_utf8(resp.body.clone()).unwrap();
        assert!(body.contains("\"error\":\"shed\""), "{body}");
        assert!(body.contains("\"retry_after_ms\":2500"), "{body}");
        assert!(body.contains("\"findings\":[\"f1\"]"), "{body}");
        assert!(resp.extra_headers.iter().any(|(n, v)| n == "retry-after" && v == "3"));
        assert!(resp.extra_headers.iter().any(|(n, v)| n == "x-retry-after-ms" && v == "2500"));
    }
}
