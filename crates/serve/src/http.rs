//! A minimal, hardened HTTP/1.1 request parser and response writer.
//!
//! The parser is a pure function over a byte buffer — no sockets, no
//! allocation beyond the parsed request — so the fuzz suite
//! (`tests/parser_fuzz.rs`) can drive it with arbitrary bytes and assert
//! the contract: every input maps to a [`Request`] plus a consumed byte
//! count, or a typed [`ParseError`]. Never a panic.
//!
//! Limits are enforced *during* parsing, not after: a request line or
//! header block larger than [`Limits::max_header_bytes`] is rejected as
//! soon as the budget is exceeded, even when the terminator has not
//! arrived yet (that is what defeats a slow-loris client that dribbles an
//! unbounded header forever), and a declared or chunked body larger than
//! [`Limits::max_body_bytes`] is rejected before the bytes are buffered.

use std::fmt;

/// Byte budgets enforced while parsing a request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request line + headers (terminator included).
    pub max_header_bytes: usize,
    /// Maximum bytes of decoded body.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { max_header_bytes: 8 * 1024, max_body_bytes: 64 * 1024 }
    }
}

/// A parsed HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercase token (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent (path + optional query).
    pub target: String,
    /// Header (name, value) pairs in arrival order; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Decoded body bytes (chunked bodies are de-chunked).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// The target's path component (query string stripped).
    #[must_use]
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }
}

/// Why a byte buffer is not (yet) a valid request.
///
/// [`ParseError::Incomplete`] is the only non-fatal variant: the
/// connection loop keeps reading and re-parses. Every other variant maps
/// to an HTTP status via [`ParseError::status`] and closes the
/// connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// More bytes are needed; nothing is wrong so far.
    Incomplete,
    /// The request line is not `METHOD SP TARGET SP HTTP/1.x`.
    BadRequestLine(String),
    /// The version is not `HTTP/1.0` or `HTTP/1.1`.
    BadVersion(String),
    /// A header line is malformed (missing colon, bad name byte, NUL).
    BadHeader(String),
    /// Request line + headers exceed [`Limits::max_header_bytes`].
    HeadersTooLarge {
        /// The configured budget that was exceeded.
        limit: usize,
    },
    /// Declared or decoded body exceeds [`Limits::max_body_bytes`].
    BodyTooLarge {
        /// The configured budget that was exceeded.
        limit: usize,
    },
    /// `Content-Length` is missing digits, non-numeric, or conflicting.
    BadContentLength(String),
    /// A chunk-size line is not valid hex or is malformed.
    BadChunkSize(String),
    /// A `Transfer-Encoding` other than `chunked` was requested.
    UnsupportedTransferEncoding(String),
}

impl ParseError {
    /// The HTTP status this parse failure maps to (`Incomplete` maps to
    /// 408: it only surfaces as a response when the read loop gave up
    /// waiting, which is precisely a request timeout).
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            ParseError::Incomplete => 408,
            ParseError::HeadersTooLarge { .. } | ParseError::BodyTooLarge { .. } => 413,
            ParseError::UnsupportedTransferEncoding(_) => 501,
            _ => 400,
        }
    }

    /// Short machine-readable code for error-response bodies.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            ParseError::Incomplete => "request_timeout",
            ParseError::BadRequestLine(_) => "bad_request_line",
            ParseError::BadVersion(_) => "bad_version",
            ParseError::BadHeader(_) => "bad_header",
            ParseError::HeadersTooLarge { .. } => "headers_too_large",
            ParseError::BodyTooLarge { .. } => "body_too_large",
            ParseError::BadContentLength(_) => "bad_content_length",
            ParseError::BadChunkSize(_) => "bad_chunk_size",
            ParseError::UnsupportedTransferEncoding(_) => "unsupported_transfer_encoding",
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Incomplete => write!(f, "incomplete request"),
            ParseError::BadRequestLine(l) => write!(f, "malformed request line {l:?}"),
            ParseError::BadVersion(v) => write!(f, "unsupported HTTP version {v:?}"),
            ParseError::BadHeader(h) => write!(f, "malformed header {h:?}"),
            ParseError::HeadersTooLarge { limit } => {
                write!(f, "request headers exceed {limit} bytes")
            }
            ParseError::BodyTooLarge { limit } => write!(f, "request body exceeds {limit} bytes"),
            ParseError::BadContentLength(v) => write!(f, "bad Content-Length {v:?}"),
            ParseError::BadChunkSize(v) => write!(f, "bad chunk size {v:?}"),
            ParseError::UnsupportedTransferEncoding(v) => {
                write!(f, "unsupported Transfer-Encoding {v:?}")
            }
        }
    }
}

/// Escape-hatch cap on a single escaped debug string inside errors so a
/// hostile request can't echo megabytes back at itself.
fn clip(s: &[u8]) -> String {
    let printable: String = s
        .iter()
        .take(48)
        .map(|&b| if (0x20..0x7f).contains(&b) { b as char } else { '.' })
        .collect();
    if s.len() > 48 {
        format!("{printable}…")
    } else {
        printable
    }
}

/// `true` for bytes legal in an HTTP token (method and header names).
fn is_token_byte(b: u8) -> bool {
    matches!(b,
        b'!' | b'#' | b'$' | b'%' | b'&' | b'\'' | b'*' | b'+' | b'-' | b'.' | b'^' | b'_'
        | b'`' | b'|' | b'~')
        || b.is_ascii_alphanumeric()
}

/// Finds `\r\n\r\n` in `buf`, returning the offset *after* it.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Parses one request from the front of `buf`.
///
/// On success returns the request and the number of bytes consumed
/// (header block + body), so a caller could in principle pipeline; this
/// server closes after one response but the contract keeps the parser
/// honest about body framing.
///
/// # Errors
///
/// [`ParseError::Incomplete`] when `buf` is a valid prefix that needs
/// more bytes; any other variant when the bytes can never become a valid
/// request under `limits`.
pub fn parse_request(buf: &[u8], limits: &Limits) -> Result<(Request, usize), ParseError> {
    let header_end = match find_header_end(buf) {
        Some(end) => {
            if end > limits.max_header_bytes {
                return Err(ParseError::HeadersTooLarge { limit: limits.max_header_bytes });
            }
            end
        }
        None => {
            // No terminator yet: fatal once the budget is already blown,
            // otherwise ask for more bytes.
            if buf.len() > limits.max_header_bytes {
                return Err(ParseError::HeadersTooLarge { limit: limits.max_header_bytes });
            }
            return Err(ParseError::Incomplete);
        }
    };
    let head = buf.get(..header_end.saturating_sub(4)).unwrap_or_default();
    let mut lines = head.split(|&b| b == b'\n').map(|l| l.strip_suffix(b"\r").unwrap_or(l));

    let request_line = lines.next().unwrap_or_default();
    let (method, target) = parse_request_line(request_line)?;

    let mut headers = Vec::new();
    for line in lines {
        headers.push(parse_header_line(line)?);
    }

    let (body, consumed) = parse_body(buf, header_end, &headers, limits)?;
    Ok((Request { method, target, headers, body }, consumed))
}

/// Splits and validates `METHOD SP TARGET SP HTTP/1.x`.
fn parse_request_line(line: &[u8]) -> Result<(String, String), ParseError> {
    let mut parts = line.split(|&b| b == b' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
    {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(ParseError::BadRequestLine(clip(line))),
    };
    if !method.iter().copied().all(is_token_byte) {
        return Err(ParseError::BadRequestLine(clip(line)));
    }
    if target.iter().any(|&b| b < 0x21 || b == 0x7f) {
        return Err(ParseError::BadRequestLine(clip(line)));
    }
    if version != b"HTTP/1.1" && version != b"HTTP/1.0" {
        return Err(ParseError::BadVersion(clip(version)));
    }
    let method = String::from_utf8_lossy(method).into_owned();
    let target = String::from_utf8_lossy(target).into_owned();
    Ok((method, target))
}

/// Splits and validates one `Name: value` header line.
fn parse_header_line(line: &[u8]) -> Result<(String, String), ParseError> {
    let colon = line
        .iter()
        .position(|&b| b == b':')
        .ok_or_else(|| ParseError::BadHeader(clip(line)))?;
    let (name, rest) = line.split_at(colon);
    let value = rest.get(1..).unwrap_or_default();
    if name.is_empty() || !name.iter().copied().all(is_token_byte) {
        return Err(ParseError::BadHeader(clip(line)));
    }
    // Field values may not contain NUL/CR/LF (CR/LF can't appear here by
    // construction) or other control bytes except HTAB.
    if value.iter().any(|&b| (b < 0x20 && b != b'\t') || b == 0x7f) {
        return Err(ParseError::BadHeader(clip(line)));
    }
    let name = String::from_utf8_lossy(name).to_ascii_lowercase();
    let value = String::from_utf8_lossy(value).trim().to_string();
    Ok((name, value))
}

/// Frames and decodes the body per the parsed headers.
fn parse_body(
    buf: &[u8],
    header_end: usize,
    headers: &[(String, String)],
    limits: &Limits,
) -> Result<(Vec<u8>, usize), ParseError> {
    let te = headers.iter().find(|(n, _)| n == "transfer-encoding").map(|(_, v)| v.as_str());
    if let Some(te) = te {
        if !te.eq_ignore_ascii_case("chunked") {
            return Err(ParseError::UnsupportedTransferEncoding(te.to_string()));
        }
        return parse_chunked(buf, header_end, limits);
    }

    let mut lengths = headers.iter().filter(|(n, _)| n == "content-length").map(|(_, v)| v);
    let Some(first) = lengths.next() else {
        return Ok((Vec::new(), header_end));
    };
    if lengths.any(|v| v != first) {
        return Err(ParseError::BadContentLength(first.clone()));
    }
    if first.is_empty() || !first.bytes().all(|b| b.is_ascii_digit()) {
        return Err(ParseError::BadContentLength(first.clone()));
    }
    let len: usize = first
        .parse()
        .map_err(|_| ParseError::BadContentLength(first.clone()))?;
    if len > limits.max_body_bytes {
        return Err(ParseError::BodyTooLarge { limit: limits.max_body_bytes });
    }
    let end = header_end.saturating_add(len);
    match buf.get(header_end..end) {
        Some(body) => Ok((body.to_vec(), end)),
        None => Err(ParseError::Incomplete),
    }
}

/// Decodes a `Transfer-Encoding: chunked` body starting at `pos`.
fn parse_chunked(
    buf: &[u8],
    header_end: usize,
    limits: &Limits,
) -> Result<(Vec<u8>, usize), ParseError> {
    let mut pos = header_end;
    let mut body = Vec::new();
    loop {
        let line_end = match buf.get(pos..).and_then(|r| r.windows(2).position(|w| w == b"\r\n"))
        {
            Some(rel) => pos + rel,
            None => {
                // A size line can't legally exceed 16 hex digits + a few
                // extension bytes; anything longer is garbage, not
                // patience-worthy.
                if buf.len().saturating_sub(pos) > 64 {
                    return Err(ParseError::BadChunkSize(clip(
                        buf.get(pos..).unwrap_or_default(),
                    )));
                }
                return Err(ParseError::Incomplete);
            }
        };
        let size_line = buf.get(pos..line_end).unwrap_or_default();
        // Chunk extensions (";ext=val") are tolerated and ignored.
        let hex = size_line.split(|&b| b == b';').next().unwrap_or_default();
        let hex_str = std::str::from_utf8(hex)
            .map_err(|_| ParseError::BadChunkSize(clip(size_line)))?
            .trim();
        if hex_str.is_empty() || hex_str.len() > 16 {
            return Err(ParseError::BadChunkSize(clip(size_line)));
        }
        let size = usize::from_str_radix(hex_str, 16)
            .map_err(|_| ParseError::BadChunkSize(clip(size_line)))?;
        pos = line_end + 2;
        if size == 0 {
            // Final chunk: require the terminating CRLF (trailers are not
            // supported — a trailer line is a malformed terminator here).
            return match buf.get(pos..pos + 2) {
                Some(b"\r\n") => Ok((body, pos + 2)),
                Some(other) => Err(ParseError::BadChunkSize(clip(other))),
                None => Err(ParseError::Incomplete),
            };
        }
        if body.len().saturating_add(size) > limits.max_body_bytes {
            return Err(ParseError::BodyTooLarge { limit: limits.max_body_bytes });
        }
        match buf.get(pos..pos + size) {
            Some(chunk) => body.extend_from_slice(chunk),
            None => return Err(ParseError::Incomplete),
        }
        pos += size;
        match buf.get(pos..pos + 2) {
            Some(b"\r\n") => pos += 2,
            Some(other) => return Err(ParseError::BadChunkSize(clip(other))),
            None => return Err(ParseError::Incomplete),
        }
    }
}

/// Canonical reason phrase for the statuses this server emits.
#[must_use]
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// An HTTP response ready to serialize onto a stream.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (name, value) appended verbatim.
    pub extra_headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    #[must_use]
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A plain-text response.
    #[must_use]
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Adds one extra header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: impl fmt::Display) -> Self {
        self.extra_headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Serializes status line + headers + body. The connection is always
    /// single-use (`Connection: close`), which keeps draining trivially
    /// correct: no idle keep-alive sockets to account for.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error (a disconnected client).
    pub fn write_to(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<(Request, usize), ParseError> {
        parse_request(bytes, &Limits::default())
    }

    #[test]
    fn parses_a_simple_get() {
        let (req, used) = parse(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path(), "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert_eq!(used, b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n".len());
    }

    #[test]
    fn parses_content_length_bodies_and_reports_incomplete_prefixes() {
        let full = b"POST /predict HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd";
        let (req, used) = parse(full).unwrap();
        assert_eq!(req.body, b"abcd");
        assert_eq!(used, full.len());
        for cut in 1..full.len() {
            match parse(&full[..cut]) {
                Ok(_) => panic!("prefix of len {cut} parsed"),
                Err(ParseError::Incomplete) => {}
                Err(e) => panic!("prefix of len {cut}: {e}"),
            }
        }
    }

    #[test]
    fn decodes_chunked_bodies() {
        let raw = b"POST /p HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n4\r\nwiki\r\n5\r\npedia\r\n0\r\n\r\n";
        let (req, used) = parse(raw).unwrap();
        assert_eq!(req.body, b"wikipedia");
        assert_eq!(used, raw.len());
    }

    #[test]
    fn typed_rejections() {
        let cases: [(&[u8], u16); 7] = [
            (b"GARBAGE\r\n\r\n", 400),
            (b"GET /x HTTP/2.0\r\n\r\n", 400),
            (b"GET /x HTTP/1.1\r\nno colon\r\n\r\n", 400),
            (b"POST /x HTTP/1.1\r\ncontent-length: nope\r\n\r\n", 400),
            (b"POST /x HTTP/1.1\r\ncontent-length: 999999999\r\n\r\n", 413),
            (b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\nzz\r\n", 400),
            (b"POST /x HTTP/1.1\r\ntransfer-encoding: gzip\r\n\r\n", 501),
        ];
        for (raw, status) in cases {
            let err = parse(raw).unwrap_err();
            assert_eq!(err.status(), status, "{}", String::from_utf8_lossy(raw));
        }
    }

    #[test]
    fn oversized_headers_fail_even_without_a_terminator() {
        let limits = Limits { max_header_bytes: 64, max_body_bytes: 64 };
        let mut raw = b"GET /x HTTP/1.1\r\nx: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', 200));
        assert_eq!(
            parse_request(&raw, &limits).unwrap_err(),
            ParseError::HeadersTooLarge { limit: 64 }
        );
    }

    #[test]
    fn response_serializes_with_framing_headers() {
        let mut out = Vec::new();
        Response::json(200, br#"{"ok":true}"#.to_vec())
            .with_header("retry-after", 2)
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.contains("retry-after: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }
}
