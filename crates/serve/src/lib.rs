//! `gpumech-serve`: the hardened HTTP/1.1 front door for the GPUMech
//! prediction pipeline.
//!
//! The ROADMAP's target is serving interval-analysis predictions at
//! production scale; the internals (batch engine, profile cache, cancel
//! tokens, circuit breakers) already exist in `gpumech-exec` and
//! `gpumech-obs`. This crate is the missing service layer, built on
//! `std::net` only (the build environment has no crates.io access):
//!
//! * **Admission control** — a bounded queue in front of a fixed worker
//!   pool; a full queue sheds with `429` + `Retry-After` derived from the
//!   observed service-time EWMA ([`server`]).
//! * **Deadlines** — every request runs under a [`CancelToken`] chained
//!   to a drain root; expiry is a typed `504`, and partial pipeline work
//!   is cancelled at its next cooperative poll, never leaked.
//! * **Input hardening** — the request parser ([`http`]) enforces header
//!   and body byte budgets *during* parsing and the read loop carries
//!   both a per-read socket timeout and a whole-request patience budget,
//!   so slow-loris and oversized inputs map to `408`/`413`.
//! * **Typed errors** — every failure is an [`ApiError`] with a stable
//!   code; static-analysis rejections carry their findings (`422`), open
//!   circuits and drain refusals are `503` ([`api`]).
//! * **Graceful drain** — SIGTERM/ctrl-c (or a [`ServerHandle`]) stops
//!   admission, keeps health endpoints live, finishes admitted work
//!   under a drain deadline, then cancels stragglers.
//! * **Observability** — `serve.*` counters/gauges/histograms through
//!   the workspace recorder plus a `/metrics` text exposition endpoint.
//!
//! [`CancelToken`]: gpumech_obs::CancelToken

pub mod api;
pub mod http;
pub mod server;

pub use api::{parse_predict_body, predict_response_body, ApiError, PredictBody};
pub use http::{parse_request, Limits, ParseError, Request, Response};
pub use server::{
    send_sigkill, send_sigterm, ServeConfig, ServeError, ServeSummary, Server, ServerHandle,
};
