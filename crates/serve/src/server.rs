//! The hardened server: bounded admission, load shedding, per-request
//! deadlines, slow-loris protection, and graceful drain.
//!
//! # Threading model
//!
//! One acceptor (the caller of [`Server::run`]) polls a non-blocking
//! [`TcpListener`] and either *admits* a connection into a bounded queue
//! or *sheds* it with `429` + `Retry-After` when the queue is full. A
//! fixed pool of service workers pops admitted connections, parses the
//! request under read timeouts and byte limits, and executes predictions
//! through the shared [`BatchEngine`] (one warm [`ProfileCache`] for the
//! server's lifetime, one long-lived per-kernel [`CircuitBreaker`]).
//!
//! # Drain
//!
//! When shutdown is requested (handle, SIGTERM, or ctrl-c), the server
//! flips `/readyz` to 503 and stops *admitting*: already-admitted
//! requests run to completion, new connections get an immediate typed
//! `503 draining` (health endpoints keep answering so orchestrators can
//! watch the drain). If admitted work is still running when the drain
//! deadline expires, the shared in-flight root token is cancelled and
//! every remaining request aborts at its next cooperative poll with a
//! typed response — partial work is cancelled, never leaked.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use gpumech_core::{Model, ModelError, SelectionMethod, Weighting};
use gpumech_exec::{
    BatchEngine, BatchJob, BatchOptions, CircuitBreaker, ExecError, ProfileCache,
};
use gpumech_isa::{SchedulingPolicy, SimConfig};
use gpumech_obs::{CancelToken, Interrupt};
use gpumech_trace::{workloads, KernelTrace, TraceError};

use crate::api::{parse_predict_body, predict_response_body, ApiError, PredictBody};
use crate::http::{parse_request, Limits, ParseError, Request, Response};

/// SIGTERM/SIGINT plumbing without the `libc` crate: an async-signal-safe
/// handler that stores into a process-global flag the accept loop polls.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static FIRED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        // An atomic store is async-signal-safe; everything else happens
        // on the accept loop when it next polls `fired`.
        FIRED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub(super) fn install() {
        // SAFETY: `on_signal` only performs an atomic store, and both
        // SIGINT (2) and SIGTERM (15) are catchable signals.
        unsafe {
            signal(2, on_signal);
            signal(15, on_signal);
        }
    }

    pub(super) fn fired() -> bool {
        FIRED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod signals {
    pub(super) fn install() {}

    pub(super) fn fired() -> bool {
        false
    }
}

/// Sends `sig` to `pid`. Returns `false` on non-Unix platforms or if the
/// signal could not be delivered.
fn send_signal(pid: u32, sig: i32) -> bool {
    #[cfg(unix)]
    {
        extern "C" {
            fn kill(pid: i32, sig: i32) -> i32;
        }
        let Ok(pid) = i32::try_from(pid) else {
            return false;
        };
        // SAFETY: plain syscall wrapper; no memory is touched.
        unsafe { kill(pid, sig) == 0 }
    }
    #[cfg(not(unix))]
    {
        let _ = (pid, sig);
        false
    }
}

/// Sends SIGTERM to `pid`. Test/bench helper (the smoke test and the
/// load harness exercise graceful drain against a real child process).
/// Returns `false` on non-Unix platforms or if the signal could not be
/// delivered.
#[must_use]
pub fn send_sigterm(pid: u32) -> bool {
    send_signal(pid, 15)
}

/// Sends SIGKILL to `pid`. Chaos helper: the load harness murders a
/// server mid-load to prove the crash-safe cache survives and a restart
/// comes back ready. Returns `false` on non-Unix platforms or failure.
#[must_use]
pub fn send_sigkill(pid: u32) -> bool {
    send_signal(pid, 9)
}

/// Server configuration. `Default` is tuned for tests and the local CLI;
/// the `gpumech serve` subcommand exposes every knob as a flag.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1`).
    pub addr: String,
    /// Bind port; `0` picks an ephemeral port (see [`Server::local_addr`]).
    pub port: u16,
    /// Service worker threads.
    pub workers: usize,
    /// Bounded admission queue capacity; a full queue sheds with 429.
    pub queue_cap: usize,
    /// Socket read timeout in milliseconds (slow-loris bound): a client
    /// that stalls mid-request this long gets `408` and is dropped.
    pub read_timeout_ms: u64,
    /// Default and maximum per-request deadline in milliseconds; a
    /// request's own `deadline_ms` may shorten but never extend it.
    pub request_timeout_ms: u64,
    /// Graceful-drain budget in milliseconds: how long shutdown waits for
    /// admitted requests before cancelling them.
    pub drain_ms: u64,
    /// Maximum request-line + header bytes before `413`.
    pub max_header_bytes: usize,
    /// Maximum body bytes before `413`.
    pub max_body_bytes: usize,
    /// Open a kernel's circuit after this many consecutive execution
    /// failures (`None` disables the breaker).
    pub breaker_threshold: Option<u32>,
    /// Persist the profile cache to this directory.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Kernels to analyze before `/readyz` reports ready.
    pub warm: Vec<String>,
    /// Honor the debug `hold_ms` request field (deterministic load and
    /// drain tests only — never enable in production).
    pub debug_hooks: bool,
    /// Install SIGTERM/SIGINT handlers that trigger graceful drain.
    pub handle_signals: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1".to_string(),
            port: 0,
            workers: 4,
            queue_cap: 32,
            read_timeout_ms: 2_000,
            request_timeout_ms: 30_000,
            drain_ms: 5_000,
            max_header_bytes: 8 * 1024,
            max_body_bytes: 64 * 1024,
            breaker_threshold: None,
            cache_dir: None,
            warm: Vec::new(),
            debug_hooks: false,
            handle_signals: false,
        }
    }
}

/// Why the server could not start or run.
#[derive(Debug)]
pub enum ServeError {
    /// Binding the listener failed.
    Bind(std::io::Error),
    /// Configuring the listener failed.
    Listener(std::io::Error),
    /// A `warm` kernel is not in the catalogue.
    UnknownWarmKernel(String),
    /// The configuration is unusable (zero workers or queue).
    InvalidConfig(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Bind(e) => write!(f, "bind failed: {e}"),
            ServeError::Listener(e) => write!(f, "listener setup failed: {e}"),
            ServeError::UnknownWarmKernel(k) => write!(f, "unknown warm kernel {k:?}"),
            ServeError::InvalidConfig(m) => write!(f, "invalid serve configuration: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// What one server run did, reported after drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Connections admitted and handled.
    pub requests: u64,
    /// Successful predictions.
    pub predicts_ok: u64,
    /// Connections shed with 429.
    pub shed: u64,
    /// Requests that hit their deadline (504).
    pub deadlines: u64,
    /// Typed client-side rejections (4xx).
    pub rejected: u64,
    /// Server-side failures (5xx).
    pub failed: u64,
    /// `true` when every admitted request finished inside the drain
    /// budget; `false` when the drain deadline forced cancellation.
    pub clean_drain: bool,
}

impl fmt::Display for ServeSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "served {} request(s): {} ok, {} rejected, {} deadline, {} failed; {} shed",
            self.requests, self.predicts_ok, self.rejected, self.deadlines, self.failed, self.shed
        )?;
        write!(f, "drain: {}", if self.clean_drain { "clean" } else { "forced (deadline hit)" })
    }
}

/// A handle that can request graceful shutdown from another thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    token: CancelToken,
}

impl ServerHandle {
    /// Requests a graceful drain: stop admitting, finish in-flight work,
    /// then return from [`Server::run`].
    pub fn shutdown(&self) {
        self.token.cancel();
    }
}

/// Shared mutable server state (everything workers and acceptor touch).
struct State {
    cfg: ServeConfig,
    engine: BatchEngine,
    breaker: Option<CircuitBreaker>,
    traces: Mutex<HashMap<(String, usize), Arc<KernelTrace>>>,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cond: Condvar,
    /// Admitted connections not yet fully handled (queued + executing).
    active: AtomicUsize,
    /// Requests currently being parsed/executed by a worker.
    in_flight: AtomicUsize,
    /// `true` once shutdown was requested: `/readyz` 503, predict 503.
    draining: std::sync::atomic::AtomicBool,
    /// `true` once warm-up finished (and until drain).
    ready: std::sync::atomic::AtomicBool,
    /// `true` once workers should exit after emptying the queue.
    stopping: std::sync::atomic::AtomicBool,
    /// Root ancestor of every per-request token; cancelled on forced drain.
    inflight_root: CancelToken,
    /// EWMA of successful predict service time, microseconds (0 = none).
    ewma_service_us: AtomicU64,
    started: Instant,
    // Summary counters (kept as plain atomics so the summary and the
    // Retry-After estimate work even with no recorder installed).
    n_requests: AtomicU64,
    n_ok: AtomicU64,
    n_shed: AtomicU64,
    n_deadline: AtomicU64,
    n_rejected: AtomicU64,
    n_failed: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl State {
    fn flag(&self, f: &std::sync::atomic::AtomicBool) -> bool {
        f.load(Ordering::SeqCst)
    }

    /// Suggested client backoff when shedding: the observed service-time
    /// EWMA times the backlog a new request would sit behind, clamped to
    /// a sane range. Before any request completes, a flat default.
    fn retry_after_ms(&self) -> u64 {
        let ewma_us = self.ewma_service_us.load(Ordering::Relaxed);
        if ewma_us == 0 {
            return 250;
        }
        let backlog = (self.active.load(Ordering::Relaxed) as u64).saturating_add(1);
        let workers = self.cfg.workers.max(1) as u64;
        (ewma_us.saturating_mul(backlog) / workers / 1_000).clamp(50, 30_000)
    }

    fn observe_service_time(&self, elapsed: Duration) {
        let sample = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX).max(1);
        // Racy read-modify-write is fine: this is a smoothing estimate,
        // not an invariant.
        let old = self.ewma_service_us.load(Ordering::Relaxed);
        let next = if old == 0 { sample } else { (old.saturating_mul(7) + sample) / 8 };
        self.ewma_service_us.store(next, Ordering::Relaxed);
    }
}

/// A bound, not-yet-running server. Splitting bind from run lets callers
/// learn the (possibly ephemeral) port before the accept loop blocks.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    state: State,
    run_token: CancelToken,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server").field("local_addr", &self.local_addr).finish_non_exhaustive()
    }
}

impl Server {
    /// Binds the listener and builds the shared engine + cache.
    ///
    /// # Errors
    ///
    /// [`ServeError`] when the bind fails, the configuration is unusable,
    /// or a warm kernel is unknown.
    pub fn bind(cfg: ServeConfig) -> Result<Server, ServeError> {
        if cfg.workers == 0 {
            return Err(ServeError::InvalidConfig("workers must be >= 1".to_string()));
        }
        if cfg.queue_cap == 0 {
            return Err(ServeError::InvalidConfig("queue-cap must be >= 1".to_string()));
        }
        for k in &cfg.warm {
            if workloads::by_name(k).is_none() {
                return Err(ServeError::UnknownWarmKernel(k.clone()));
            }
        }
        let listener =
            TcpListener::bind((cfg.addr.as_str(), cfg.port)).map_err(ServeError::Bind)?;
        listener.set_nonblocking(true).map_err(ServeError::Listener)?;
        let local_addr = listener.local_addr().map_err(ServeError::Listener)?;
        if cfg.handle_signals {
            signals::install();
        }
        let cache = match &cfg.cache_dir {
            Some(dir) => ProfileCache::with_disk(dir),
            None => ProfileCache::in_memory(),
        };
        // One engine worker per call: each HTTP worker runs one job at a
        // time, so request-level parallelism comes from the HTTP pool
        // while the engine contributes the cache, cancellation, and
        // typed-error machinery.
        let engine = BatchEngine::with_cache(1, cache);
        let breaker = cfg.breaker_threshold.map(CircuitBreaker::new);
        let state = State {
            engine,
            breaker,
            traces: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cond: Condvar::new(),
            active: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            draining: std::sync::atomic::AtomicBool::new(false),
            ready: std::sync::atomic::AtomicBool::new(cfg.warm.is_empty()),
            stopping: std::sync::atomic::AtomicBool::new(false),
            inflight_root: CancelToken::never(),
            ewma_service_us: AtomicU64::new(0),
            started: Instant::now(),
            n_requests: AtomicU64::new(0),
            n_ok: AtomicU64::new(0),
            n_shed: AtomicU64::new(0),
            n_deadline: AtomicU64::new(0),
            n_rejected: AtomicU64::new(0),
            n_failed: AtomicU64::new(0),
            cfg,
        };
        Ok(Server { listener, local_addr, state, run_token: CancelToken::never() })
    }

    /// The bound address (resolves port `0` to the actual ephemeral port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that can request graceful shutdown from another thread.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { token: self.run_token.clone() }
    }

    /// Runs the accept loop until shutdown, then drains and returns the
    /// run summary. Blocking; spawn it (or call from `main`).
    ///
    /// # Errors
    ///
    /// Currently infallible after a successful bind, but typed for
    /// forward compatibility.
    pub fn run(self) -> Result<ServeSummary, ServeError> {
        let state = &self.state;
        let clean = std::thread::scope(|s| {
            for _ in 0..state.cfg.workers {
                s.spawn(move || worker_loop(state));
            }
            if !state.cfg.warm.is_empty() {
                s.spawn(move || warm_up(state));
            }
            let clean = accept_loop(state, &self.listener, &self.run_token);
            state.stopping.store(true, Ordering::SeqCst);
            state.queue_cond.notify_all();
            clean
        });
        if clean {
            gpumech_obs::counter!("serve.drain.clean");
        }
        Ok(ServeSummary {
            requests: state.n_requests.load(Ordering::Relaxed),
            predicts_ok: state.n_ok.load(Ordering::Relaxed),
            shed: state.n_shed.load(Ordering::Relaxed),
            deadlines: state.n_deadline.load(Ordering::Relaxed),
            rejected: state.n_rejected.load(Ordering::Relaxed),
            failed: state.n_failed.load(Ordering::Relaxed),
            clean_drain: clean,
        })
    }
}

/// Pre-analyzes the configured warm kernels into the shared cache, then
/// flips readiness. Failures are non-fatal: the kernel will simply be
/// analyzed on first request.
fn warm_up(state: &State) {
    for name in &state.cfg.warm {
        let Some(w) = workloads::by_name(name) else { continue };
        let Ok(trace) = w.trace() else { continue };
        let trace = Arc::new(trace);
        // Memo key 0 = "default blocks", matching un-overridden requests.
        lock(&state.traces).insert((name.clone(), 0), Arc::clone(&trace));
        let job = BatchJob::new(name.clone(), trace, SimConfig::table1());
        let _ = state.engine.run_with(&[job], &BatchOptions::default());
    }
    state.ready.store(true, Ordering::SeqCst);
}

/// The accept/drain loop. Returns `true` for a clean drain (all admitted
/// work finished inside the budget), `false` when cancellation was forced.
fn accept_loop(state: &State, listener: &TcpListener, run_token: &CancelToken) -> bool {
    let mut drain_started: Option<Instant> = None;
    loop {
        if drain_started.is_none()
            && (run_token.is_cancelled() || (state.cfg.handle_signals && signals::fired()))
        {
            drain_started = Some(Instant::now());
            state.draining.store(true, Ordering::SeqCst);
            state.ready.store(false, Ordering::SeqCst);
        }
        if let Some(t0) = drain_started {
            if state.active.load(Ordering::SeqCst) == 0 {
                return true;
            }
            if t0.elapsed() >= Duration::from_millis(state.cfg.drain_ms) {
                gpumech_obs::counter!("serve.drain.forced");
                state.inflight_root.cancel();
                return false;
            }
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if drain_started.is_some() {
                    // Not admitted: answer health probes, refuse work.
                    drain_connection(state, stream);
                } else {
                    admit(state, stream);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Applies socket timeouts; a failure here means the socket is already
/// dead, in which case the subsequent read/write fails fast anyway.
fn configure_stream(state: &State, stream: &TcpStream) {
    let t = Duration::from_millis(state.cfg.read_timeout_ms.max(1));
    let _ = stream.set_read_timeout(Some(t));
    let _ = stream.set_write_timeout(Some(t));
}

/// Admission control: enqueue the connection, or shed it with `429` and a
/// `Retry-After` derived from the observed service-time EWMA.
fn admit(state: &State, stream: TcpStream) {
    configure_stream(state, &stream);
    let mut stream = Some(stream);
    let depth = {
        let mut q = lock(&state.queue);
        if q.len() >= state.cfg.queue_cap {
            None
        } else {
            if let Some(s) = stream.take() {
                q.push_back(s);
            }
            state.active.fetch_add(1, Ordering::SeqCst);
            Some(q.len())
        }
    };
    match depth {
        Some(depth) => {
            #[allow(clippy::cast_precision_loss)]
            {
                gpumech_obs::gauge!("serve.queue.depth", depth as f64);
            }
            state.queue_cond.notify_one();
        }
        None => {
            // Shedding responds *without* reading the request: the whole
            // point is to spend ~nothing on work we refuse.
            state.n_shed.fetch_add(1, Ordering::Relaxed);
            gpumech_obs::counter!("serve.http.shed");
            let retry = state.retry_after_ms();
            let resp = ApiError::new(429, "shed", "admission queue is full")
                .with_retry_after_ms(retry)
                .response();
            if let Some(mut s) = stream {
                respond_and_close(&mut s, &resp);
            }
        }
    }
}

/// Serves one connection accepted during drain: health endpoints answer,
/// anything else gets a typed `503 draining`.
fn drain_connection(state: &State, mut stream: TcpStream) {
    configure_stream(state, &stream);
    let limits =
        Limits { max_header_bytes: state.cfg.max_header_bytes, max_body_bytes: state.cfg.max_body_bytes };
    let patience = Duration::from_millis(state.cfg.read_timeout_ms.max(1));
    let resp = match read_request(&mut stream, &limits, patience) {
        Ok(Some(req)) => match (req.method.as_str(), req.path()) {
            ("GET", "/healthz") => health_response(state),
            ("GET", "/readyz") => readyz_response(state),
            ("GET", "/metrics") => metrics_response(state),
            _ => ApiError::new(503, "draining", "server is draining; not accepting new work")
                .with_retry_after_ms(state.cfg.drain_ms)
                .response(),
        },
        Ok(None) => return,
        Err(e) => parse_error_response(state, &e),
    };
    respond_and_close(&mut stream, &resp);
}

/// The worker loop: pop admitted connections until stopping and the
/// queue is empty.
fn worker_loop(state: &State) {
    loop {
        let conn = {
            let mut q = lock(&state.queue);
            loop {
                if let Some(c) = q.pop_front() {
                    break Some(c);
                }
                if state.flag(&state.stopping) {
                    break None;
                }
                q = state
                    .queue_cond
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        };
        let Some(conn) = conn else { return };
        let n = state.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        #[allow(clippy::cast_precision_loss)]
        {
            gpumech_obs::gauge!("serve.req.in_flight", n as f64);
        }
        handle_connection(state, conn);
        let n = state.in_flight.fetch_sub(1, Ordering::SeqCst) - 1;
        #[allow(clippy::cast_precision_loss)]
        {
            gpumech_obs::gauge!("serve.req.in_flight", n as f64);
        }
        state.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Reads one request off the stream under the configured limits.
///
/// `Ok(None)` means the client vanished before sending anything — not
/// worth a response. A stall (read timeout) maps to
/// [`ParseError::Incomplete`], which [`ParseError::status`] renders as
/// `408`; a connection cut mid-request maps to a `400`.
fn read_request(
    stream: &mut TcpStream,
    limits: &Limits,
    patience: Duration,
) -> Result<Option<Request>, ParseError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let t0 = Instant::now();
    loop {
        match parse_request(&buf, limits) {
            Ok((req, _consumed)) => return Ok(Some(req)),
            Err(ParseError::Incomplete) => {}
            Err(fatal) => return Err(fatal),
        }
        // A client dribbling one byte per read resets the socket timeout
        // every time; the whole-request patience budget does not reset.
        if t0.elapsed() > patience {
            return Err(ParseError::Incomplete);
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err(ParseError::BadRequestLine("truncated request".to_string()));
            }
            Ok(n) => buf.extend_from_slice(chunk.get(..n).unwrap_or_default()),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Slow loris: the read timeout is the per-read patience
                // budget. The parser said Incomplete, the client said
                // nothing — give up with 408.
                return Err(ParseError::Incomplete);
            }
            Err(_) => return Ok(None),
        }
    }
}

/// Writes `resp`, then performs a lingering close: shut down the write
/// side and drain what the client already sent before dropping the
/// socket. Without this, closing with unread request bytes in the
/// receive buffer turns the close into a TCP RST that can destroy the
/// response in flight — exactly on the paths that matter most (shedding
/// without reading the body, aborting oversized headers mid-stream).
fn respond_and_close(stream: &mut TcpStream, resp: &Response) {
    let _ = resp.write_to(stream);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut sink = [0u8; 4096];
    let t0 = Instant::now();
    // Bounded drain: at most ~256 KiB or 500 ms, whichever comes first.
    for _ in 0..64 {
        if t0.elapsed() > Duration::from_millis(500) {
            break;
        }
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

fn parse_error_response(state: &State, e: &ParseError) -> Response {
    state.n_rejected.fetch_add(1, Ordering::Relaxed);
    gpumech_obs::counter!("serve.http.parse_errors");
    if e.status() == 408 {
        gpumech_obs::counter!("serve.http.timeouts");
    }
    ApiError::new(e.status(), e.code(), e.to_string()).response()
}

/// Parses, routes, executes, responds. Response write errors are ignored:
/// the client hanging up mid-response is its problem, not the server's.
fn handle_connection(state: &State, mut stream: TcpStream) {
    state.n_requests.fetch_add(1, Ordering::Relaxed);
    gpumech_obs::counter!("serve.http.requests");
    let limits =
        Limits { max_header_bytes: state.cfg.max_header_bytes, max_body_bytes: state.cfg.max_body_bytes };
    let t0 = Instant::now();
    // Whole-request patience: generous multiple of the per-read timeout
    // so slow-but-live clients finish while dribblers are bounded.
    let patience = Duration::from_millis(state.cfg.read_timeout_ms.max(1).saturating_mul(4));
    let resp = match read_request(&mut stream, &limits, patience) {
        Ok(Some(req)) => route(state, &req, t0),
        Ok(None) => return,
        Err(e) => parse_error_response(state, &e),
    };
    respond_and_close(&mut stream, &resp);
}

fn elapsed_ms(t0: Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e3
}

/// Dispatches one parsed request and records the per-endpoint latency.
fn route(state: &State, req: &Request, t0: Instant) -> Response {
    match (req.method.as_str(), req.path()) {
        ("GET", "/healthz") => {
            let resp = health_response(state);
            gpumech_obs::histogram!("serve.healthz.latency_ms", elapsed_ms(t0));
            resp
        }
        ("GET", "/readyz") => {
            let resp = readyz_response(state);
            gpumech_obs::histogram!("serve.readyz.latency_ms", elapsed_ms(t0));
            resp
        }
        ("GET", "/metrics") => {
            let resp = metrics_response(state);
            gpumech_obs::histogram!("serve.metrics.latency_ms", elapsed_ms(t0));
            resp
        }
        ("POST", "/predict") => {
            let resp = match handle_predict(state, req) {
                Ok(resp) => resp,
                Err(e) => {
                    if e.status < 500 {
                        state.n_rejected.fetch_add(1, Ordering::Relaxed);
                        gpumech_obs::counter!("serve.req.rejected");
                    } else {
                        state.n_failed.fetch_add(1, Ordering::Relaxed);
                        gpumech_obs::counter!("serve.req.failed");
                    }
                    e.response()
                }
            };
            gpumech_obs::histogram!("serve.predict.latency_ms", elapsed_ms(t0));
            resp
        }
        (_, "/healthz" | "/readyz" | "/metrics" | "/predict") => {
            state.n_rejected.fetch_add(1, Ordering::Relaxed);
            ApiError::new(405, "method_not_allowed", format!("{} not allowed here", req.method))
                .response()
        }
        (_, path) => {
            state.n_rejected.fetch_add(1, Ordering::Relaxed);
            ApiError::new(404, "not_found", format!("no such endpoint {path:?}")).response()
        }
    }
}

fn health_response(state: &State) -> Response {
    let uptime = state.started.elapsed().as_millis();
    Response::json(200, format!("{{\"status\":\"ok\",\"uptime_ms\":{uptime}}}"))
}

fn readyz_response(state: &State) -> Response {
    if state.flag(&state.draining) || state.flag(&state.stopping) {
        Response::json(503, "{\"status\":\"draining\"}")
    } else if state.flag(&state.ready) {
        Response::json(200, "{\"status\":\"ready\"}")
    } else {
        Response::json(503, "{\"status\":\"warming\"}")
    }
}

/// Builds the per-request machine configuration from body overrides.
fn request_config(body: &PredictBody) -> Result<SimConfig, ApiError> {
    let mut cfg = SimConfig::table1();
    if let Some(w) = body.warps {
        cfg = cfg.with_warps_per_core(w);
    }
    if let Some(m) = body.mshrs {
        cfg = cfg.with_mshrs(m);
    }
    if let Some(b) = body.bw {
        cfg = cfg.with_dram_bandwidth(b);
    }
    if let Some(s) = body.sfu {
        cfg = cfg.with_sfu_per_core(s);
    }
    cfg.validate()
        .map_err(|e| ApiError::new(422, "invalid_config", e.to_string()))?;
    Ok(cfg)
}

fn request_policy(body: &PredictBody) -> Result<SchedulingPolicy, ApiError> {
    match body.policy.as_deref() {
        None | Some("rr") => Ok(SchedulingPolicy::RoundRobin),
        Some("gto") => Ok(SchedulingPolicy::GreedyThenOldest),
        Some(other) => Err(ApiError::new(
            422,
            "invalid_option",
            format!("policy must be rr|gto, got {other:?}"),
        )),
    }
}

fn request_model(body: &PredictBody) -> Result<Model, ApiError> {
    match body.model.as_deref() {
        None | Some("full" | "mt_mshr_band") => Ok(Model::MtMshrBand),
        Some("naive") => Ok(Model::NaiveInterval),
        Some("markov") => Ok(Model::MarkovChain),
        Some("mt") => Ok(Model::Mt),
        Some("mt_mshr") => Ok(Model::MtMshr),
        Some(other) => Err(ApiError::new(
            422,
            "invalid_option",
            format!("model must be naive|markov|mt|mt_mshr|full, got {other:?}"),
        )),
    }
}

fn request_selection(body: &PredictBody) -> Result<(SelectionMethod, Weighting), ApiError> {
    match body.selection.as_deref() {
        None | Some("clustering") => {
            Ok((SelectionMethod::Clustering, Weighting::SingleRepresentative))
        }
        Some("max") => Ok((SelectionMethod::Max, Weighting::SingleRepresentative)),
        Some("min") => Ok((SelectionMethod::Min, Weighting::SingleRepresentative)),
        Some("weighted") => Ok((SelectionMethod::Clustering, Weighting::PopulationWeighted)),
        Some(other) => Err(ApiError::new(
            422,
            "invalid_option",
            format!("selection must be max|min|clustering|weighted, got {other:?}"),
        )),
    }
}

/// Fetches (or computes and memoizes) the trace for `(kernel, blocks)`.
fn lookup_trace(
    state: &State,
    kernel: &str,
    blocks: Option<usize>,
) -> Result<Arc<KernelTrace>, ApiError> {
    let w = workloads::by_name(kernel)
        .ok_or_else(|| ApiError::new(404, "kernel_not_found", format!("unknown kernel {kernel:?}")))?;
    let key = (kernel.to_string(), blocks.unwrap_or(0));
    if let Some(t) = lock(&state.traces).get(&key) {
        return Ok(Arc::clone(t));
    }
    let w = match blocks {
        Some(b) => w.with_blocks(b),
        None => w,
    };
    let trace = w.trace().map_err(|e| match e {
        TraceError::RejectedByAnalysis { kernel, reason, findings } => {
            ApiError::new(
                422,
                "rejected_by_analysis",
                format!("kernel {kernel:?} rejected by static analysis: {reason}"),
            )
            .with_findings(findings)
        }
        other => ApiError::new(422, "trace_failed", other.to_string()),
    })?;
    let trace = Arc::new(trace);
    lock(&state.traces).insert(key, Arc::clone(&trace));
    Ok(trace)
}

/// Maps a per-job execution failure onto its API error.
fn exec_error_to_api(state: &State, kernel: &str, err: &ExecError) -> ApiError {
    match err {
        ExecError::Deadline => {
            state.n_deadline.fetch_add(1, Ordering::Relaxed);
            gpumech_obs::counter!("serve.req.deadline");
            ApiError::new(504, "deadline_exceeded", format!("prediction for {kernel:?} exceeded its deadline"))
        }
        ExecError::Cancelled => ApiError::new(
            503,
            "draining",
            "request cancelled: server drain deadline expired",
        ),
        ExecError::CircuitOpen { kernel, failures } => ApiError::new(
            503,
            "circuit_open",
            format!("circuit open for kernel {kernel:?} after {failures} consecutive failures"),
        )
        .with_retry_after_ms(1_000),
        ExecError::RejectedByAnalysis { kernel, findings } => ApiError::new(
            422,
            "rejected_by_analysis",
            format!("kernel {kernel:?} rejected by static analysis"),
        )
        .with_findings(findings.clone()),
        ExecError::Model(ModelError::Trace(TraceError::RejectedByAnalysis {
            kernel,
            reason,
            findings,
        })) => ApiError::new(
            422,
            "rejected_by_analysis",
            format!("kernel {kernel:?} rejected by static analysis: {reason}"),
        )
        .with_findings(findings.clone()),
        ExecError::Model(ModelError::InvalidConfig(e)) => {
            ApiError::new(422, "invalid_config", e.to_string())
        }
        ExecError::Model(ModelError::InvalidRequest(m)) => {
            ApiError::new(422, "invalid_request", m.clone())
        }
        ExecError::Model(e) => ApiError::new(500, "model_failed", e.to_string()),
        ExecError::WorkerPanic { message, .. } => {
            ApiError::new(500, "internal", format!("worker panicked: {message}"))
        }
        ExecError::ResultLost { .. } => {
            ApiError::new(500, "internal", "prediction result lost".to_string())
        }
    }
}

/// The `POST /predict` handler.
fn handle_predict(state: &State, req: &Request) -> Result<Response, ApiError> {
    if state.flag(&state.draining) || state.flag(&state.stopping) {
        return Err(ApiError::new(503, "draining", "server is draining; not accepting new work")
            .with_retry_after_ms(state.cfg.drain_ms));
    }
    if !state.flag(&state.ready) {
        return Err(ApiError::new(503, "warming", "server is still warming its caches")
            .with_retry_after_ms(250));
    }
    let body = parse_predict_body(&req.body)?;
    let cfg = request_config(&body)?;
    let policy = request_policy(&body)?;
    let model = request_model(&body)?;
    let (selection, weighting) = request_selection(&body)?;

    if let Some(failures) = state.breaker.as_ref().and_then(|b| b.is_open(&body.kernel)) {
        return Err(ApiError::new(
            503,
            "circuit_open",
            format!("circuit open for kernel {:?} after {failures} consecutive failures", body.kernel),
        )
        .with_retry_after_ms(1_000));
    }

    let trace = lookup_trace(state, &body.kernel, body.blocks)?;

    // Per-request deadline: the request may shorten the server's budget
    // but never extend it; the token chains to the drain root so a forced
    // drain cancels in-flight work at its next poll.
    let deadline_ms =
        body.deadline_ms.unwrap_or(state.cfg.request_timeout_ms).clamp(1, state.cfg.request_timeout_ms);
    let token = state.inflight_root.child_with_timeout_ms(deadline_ms);

    // Debug hold: deterministic service time for load/drain tests. Polls
    // the token so deadlines and drain cancellation still bite mid-hold.
    if state.cfg.debug_hooks {
        if let Some(hold) = body.hold_ms {
            let t0 = Instant::now();
            while t0.elapsed() < Duration::from_millis(hold) {
                if let Err(why) = token.check() {
                    return Err(match why {
                        Interrupt::DeadlineExceeded => {
                            exec_error_to_api(state, &body.kernel, &ExecError::Deadline)
                        }
                        Interrupt::Cancelled => {
                            exec_error_to_api(state, &body.kernel, &ExecError::Cancelled)
                        }
                    });
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }

    let mut job = BatchJob::new(body.kernel.clone(), trace, cfg);
    job.policy = policy;
    job.model = model;
    job.selection = selection;
    job.weighting = weighting;
    let opts = BatchOptions { cancel: Some(token), ..BatchOptions::default() };
    let t_exec = Instant::now();
    let mut results = state.engine.run_with(&[job], &opts);
    let outcome = results.pop().map(|r| r.map_err(|e| e.error));

    match outcome {
        Some(Ok(p)) => {
            if let Some(b) = &state.breaker {
                b.record_success(&body.kernel);
            }
            state.observe_service_time(t_exec.elapsed());
            state.n_ok.fetch_add(1, Ordering::Relaxed);
            gpumech_obs::counter!("serve.req.ok");
            let body_json = predict_response_body(&body.kernel, &p)?;
            Ok(Response::json(200, body_json))
        }
        Some(Err(err)) => {
            let api = exec_error_to_api(state, &body.kernel, &err);
            // Server-side faults (5xx and blown deadlines) count against
            // the kernel's breaker; client rejections, drain
            // cancellations, and already-open circuits do not.
            let server_fault = api.status >= 500 && api.code != "draining" && api.code != "circuit_open";
            if server_fault {
                if let Some(b) = &state.breaker {
                    if b.record_failure(&body.kernel) {
                        gpumech_obs::counter!("serve.breaker.trips");
                    }
                }
            }
            Err(api)
        }
        None => Err(ApiError::new(500, "internal", "engine returned no result".to_string())),
    }
}

/// Renders the `/metrics` text exposition: one `name value` line per
/// aggregate from the installed recorder (counters, gauges, histogram
/// count/sum/p50/p99), plus the server's own liveness numbers — all
/// under the workspace's `stage.subsystem.name` scheme.
fn metrics_response(state: &State) -> Response {
    let mut out = String::with_capacity(2048);
    out.push_str("# gpumech-serve metrics\n");
    out.push_str(&format!(
        "serve.http.requests_total {}\nserve.http.shed_total {}\nserve.req.ok_total {}\n",
        state.n_requests.load(Ordering::Relaxed),
        state.n_shed.load(Ordering::Relaxed),
        state.n_ok.load(Ordering::Relaxed),
    ));
    out.push_str(&format!(
        "serve.req.deadline_total {}\nserve.req.rejected_total {}\nserve.req.failed_total {}\n",
        state.n_deadline.load(Ordering::Relaxed),
        state.n_rejected.load(Ordering::Relaxed),
        state.n_failed.load(Ordering::Relaxed),
    ));
    out.push_str(&format!(
        "serve.queue.depth {}\nserve.req.in_flight {}\nserve.queue.capacity {}\n",
        lock(&state.queue).len(),
        state.in_flight.load(Ordering::Relaxed),
        state.cfg.queue_cap,
    ));
    out.push_str(&format!(
        "serve.http.ready {}\nserve.http.draining {}\nserve.req.ewma_service_us {}\n",
        u8::from(state.flag(&state.ready)),
        u8::from(state.flag(&state.draining)),
        state.ewma_service_us.load(Ordering::Relaxed),
    ));
    if let Some(rec) = gpumech_obs::installed() {
        let snap = rec.snapshot();
        for (name, agg) in &snap.counters {
            out.push_str(&format!("{name} {}\n", agg.total));
        }
        for (name, agg) in &snap.gauges {
            out.push_str(&format!("{name} {}\n", agg.last));
        }
        for (name, agg) in &snap.hists {
            out.push_str(&format!("{name}_count {}\n{name}_sum {}\n", agg.count, agg.sum));
            out.push_str(&format!(
                "{name}_p50 {}\n{name}_p90 {}\n{name}_p99 {}\n",
                agg.quantile(0.50).unwrap_or(0.0),
                agg.quantile(0.90).unwrap_or(0.0),
                agg.quantile(0.99).unwrap_or(0.0),
            ));
        }
    }
    Response::text(200, out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn bind_rejects_unusable_configs() {
        let err =
            Server::bind(ServeConfig { workers: 0, ..ServeConfig::default() }).unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig(_)), "{err}");
        let err = Server::bind(ServeConfig { queue_cap: 0, ..ServeConfig::default() })
            .unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig(_)), "{err}");
        let err = Server::bind(ServeConfig {
            warm: vec!["no_such_kernel".to_string()],
            ..ServeConfig::default()
        })
        .unwrap_err();
        assert!(matches!(err, ServeError::UnknownWarmKernel(_)), "{err}");
    }

    #[test]
    fn metrics_quantiles_come_from_histogram_agg() {
        let mut agg = gpumech_obs::HistogramAgg::default();
        for v in [2.0, 2.0, 60.0, 60.0] {
            agg.observe(v);
        }
        let p50 = agg.quantile(0.50).unwrap();
        let p99 = agg.quantile(0.99).unwrap();
        assert!((2.0..=2.5).contains(&p50), "p50={p50}");
        assert!((48.0..=60.0).contains(&p99), "p99={p99}");
        assert!(gpumech_obs::HistogramAgg::default().quantile(0.99).is_none());
    }
}
