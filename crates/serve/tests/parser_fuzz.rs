//! Deterministic fuzz fan over the HTTP request parser.
//!
//! Contract under test: for *any* byte input, [`parse_request`] returns a
//! valid request or a typed [`ParseError`] — it never panics, and fatal
//! errors map to a real HTTP status. The fan is splitmix64-seeded so a
//! failure reproduces from its case index alone.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::panic::{catch_unwind, AssertUnwindSafe};

use gpumech_serve::{parse_request, Limits, ParseError};
use gpumech_trace::splitmix64;

/// Small limits so the fan actually exercises the budget paths.
fn limits() -> Limits {
    Limits { max_header_bytes: 512, max_body_bytes: 1024 }
}

/// Seeds of well-formed requests the mutators corrupt.
fn seed_requests() -> Vec<Vec<u8>> {
    vec![
        b"GET /healthz HTTP/1.1\r\nhost: localhost\r\n\r\n".to_vec(),
        b"GET /metrics?verbose=1 HTTP/1.0\r\n\r\n".to_vec(),
        b"POST /predict HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: 26\r\n\r\n{\"kernel\":\"sdk_vectoradd\"}".to_vec(),
        b"POST /predict HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n".to_vec(),
        b"DELETE /predict HTTP/1.1\r\nx-a: 1\r\nx-b: 2\r\n\r\n".to_vec(),
    ]
}

/// One parse under `catch_unwind`: the contract is "typed outcome, never
/// a panic", and on fatal errors "a real status + stable code".
fn assert_contract(case: &str, bytes: &[u8]) {
    let outcome = catch_unwind(AssertUnwindSafe(|| parse_request(bytes, &limits())));
    match outcome {
        Err(_) => panic!("{case}: parser panicked on {:?}", String::from_utf8_lossy(bytes)),
        Ok(Ok((req, consumed))) => {
            assert!(consumed <= bytes.len(), "{case}: consumed past the buffer");
            assert!(!req.method.is_empty(), "{case}: empty method accepted");
        }
        Ok(Err(e)) => {
            assert!(
                matches!(e.status(), 400 | 408 | 413 | 501),
                "{case}: unmapped status {} for {e}",
                e.status()
            );
            assert!(!e.code().is_empty(), "{case}: error without a code");
        }
    }
}

#[test]
fn truncations_of_valid_requests_are_incomplete_or_typed() {
    for (si, seed) in seed_requests().iter().enumerate() {
        for cut in 0..seed.len() {
            let case = format!("seed {si} cut {cut}");
            assert_contract(&case, &seed[..cut]);
        }
    }
}

#[test]
fn byte_corruptions_never_panic() {
    let seeds = seed_requests();
    for case_idx in 0u64..2_000 {
        let r0 = splitmix64(0x5EED_0001 ^ case_idx);
        let seed = &seeds[(r0 % seeds.len() as u64) as usize];
        let mut bytes = seed.clone();
        // 1-4 corruptions: overwrite with an arbitrary byte, biased
        // toward the interesting ones (NUL, CR, LF, colon, space, high).
        let n_corrupt = 1 + (splitmix64(r0) % 4) as usize;
        for k in 0..n_corrupt {
            let r = splitmix64(r0 ^ (k as u64).wrapping_mul(0x9E37_79B9));
            let pos = (r % bytes.len() as u64) as usize;
            let palette =
                [0u8, b'\r', b'\n', b':', b' ', 0xff, 0x80, b'0', b'z', 0x7f, b'\t', b';'];
            bytes[pos] = if r & 1 == 0 {
                palette[((r >> 8) % palette.len() as u64) as usize]
            } else {
                (r >> 16) as u8
            };
        }
        assert_contract(&format!("corrupt case {case_idx}"), &bytes);
    }
}

#[test]
fn random_byte_fans_never_panic() {
    for case_idx in 0u64..1_000 {
        let r0 = splitmix64(0xF00D_BABE ^ case_idx);
        let len = (r0 % 700) as usize;
        let mut bytes = Vec::with_capacity(len);
        let mut x = r0;
        while bytes.len() < len {
            x = splitmix64(x);
            bytes.extend_from_slice(&x.to_le_bytes());
        }
        bytes.truncate(len);
        assert_contract(&format!("random case {case_idx}"), &bytes);
    }
}

#[test]
fn hostile_chunk_sizes_are_typed() {
    let head = b"POST /p HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n";
    let hostile: [&[u8]; 8] = [
        b"zz\r\nhello\r\n0\r\n\r\n",                  // non-hex size
        b"-5\r\nhello\r\n0\r\n\r\n",                  // negative
        b"ffffffffffffffffffff\r\nx\r\n0\r\n\r\n",    // > 16 hex digits
        b"400\r\n",                                   // size beyond body limit budget... incomplete
        b"5;ext=ok\r\nhello\r\n0\r\n\r\n",            // extension (accepted)
        b"5\r\nhelloX\r\n0\r\n\r\n",                  // missing chunk CRLF
        b"0\r\ntrailer: x\r\n\r\n",                   // trailers unsupported
        b"1\r\n\xff\r\n0\r\n\r\n",                    // binary chunk data (fine)
    ];
    for (i, tail) in hostile.iter().enumerate() {
        let mut bytes = head.to_vec();
        bytes.extend_from_slice(tail);
        assert_contract(&format!("chunk case {i}"), &bytes);
    }
    // And the two that must have specific verdicts:
    let mut bad = head.to_vec();
    bad.extend_from_slice(b"zz\r\nhello\r\n0\r\n\r\n");
    assert!(matches!(
        parse_request(&bad, &limits()).unwrap_err(),
        ParseError::BadChunkSize(_)
    ));
    let mut huge = head.to_vec();
    huge.extend_from_slice(b"fff\r\n"); // 4095 > 1024 body budget
    assert!(matches!(
        parse_request(&huge, &limits()).unwrap_err(),
        ParseError::BodyTooLarge { .. }
    ));
}

#[test]
fn oversized_headers_reject_with_or_without_terminator() {
    // Grown header, no terminator: must flip from Incomplete to
    // HeadersTooLarge exactly when the budget is exceeded, not OOM later.
    let mut raw = b"GET / HTTP/1.1\r\nx: ".to_vec();
    while raw.len() <= 512 {
        raw.push(b'a');
        let out = parse_request(&raw, &limits());
        if raw.len() <= 512 {
            assert!(matches!(out, Err(ParseError::Incomplete)), "at {}", raw.len());
        }
    }
    assert!(matches!(
        parse_request(&raw, &limits()),
        Err(ParseError::HeadersTooLarge { limit: 512 })
    ));
    // With a terminator the verdict is the same.
    raw.extend_from_slice(b"\r\n\r\n");
    assert!(matches!(
        parse_request(&raw, &limits()),
        Err(ParseError::HeadersTooLarge { limit: 512 })
    ));
}

#[test]
fn nul_bytes_in_structure_are_rejected() {
    for raw in [
        &b"G\0T / HTTP/1.1\r\n\r\n"[..],
        b"GET /\0 HTTP/1.1\r\n\r\n",
        b"GET / HTTP/1.1\r\nx\0y: 1\r\n\r\n",
        b"GET / HTTP/1.1\r\nx: a\0b\r\n\r\n",
    ] {
        let err = parse_request(raw, &limits()).unwrap_err();
        assert_eq!(err.status(), 400, "{err}");
    }
}
