//! End-to-end service tests over real sockets: admission + load-shed
//! semantics, per-request deadlines, graceful and forced drain,
//! slow-loris/oversize protection, and typed error mapping.
//!
//! Tests are serialized (one server at a time) because the observability
//! recorder is process-global and the container is small; each test
//! still runs in well under a second of wall time.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use gpumech_core::{Gpumech, PredictionRequest};
use gpumech_isa::SimConfig;
use gpumech_obs::Recorder;
use gpumech_serve::{predict_response_body, ServeConfig, ServeSummary, Server, ServerHandle};
use gpumech_trace::workloads;

/// Serializes every test in this file: one server, one recorder at a time.
static SERIAL: Mutex<()> = Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Running {
    addr: SocketAddr,
    handle: ServerHandle,
    join: std::thread::JoinHandle<ServeSummary>,
}

impl Running {
    fn start(cfg: ServeConfig) -> Running {
        let server = Server::bind(cfg).expect("bind");
        let addr = server.local_addr();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().expect("run"));
        Running { addr, handle, join }
    }

    fn stop(self) -> ServeSummary {
        self.handle.shutdown();
        self.join.join().expect("server thread")
    }
}

/// A parsed response: status, headers (lowercased names), body.
#[derive(Debug)]
struct Resp {
    status: u16,
    headers: HashMap<String, String>,
    body: String,
}

/// Writes `raw` and reads the full response (connection: close framing).
fn send_raw(addr: SocketAddr, raw: &[u8]) -> Resp {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(raw).expect("write");
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).expect("read");
    parse_response(&buf)
}

fn parse_response(buf: &[u8]) -> Resp {
    let text = String::from_utf8_lossy(buf);
    let (head, body) = text.split_once("\r\n\r\n").expect("response framing");
    let mut lines = head.lines();
    let status_line = lines.next().expect("status line");
    let status: u16 =
        status_line.split_whitespace().nth(1).expect("status code").parse().expect("numeric");
    let mut headers = HashMap::new();
    for line in lines {
        if let Some((n, v)) = line.split_once(':') {
            headers.insert(n.trim().to_ascii_lowercase(), v.trim().to_string());
        }
    }
    Resp { status, headers, body: body.to_string() }
}

fn get(addr: SocketAddr, path: &str) -> Resp {
    send_raw(addr, format!("GET {path} HTTP/1.1\r\nhost: t\r\n\r\n").as_bytes())
}

fn predict(addr: SocketAddr, body: &str) -> Resp {
    send_raw(
        addr,
        format!(
            "POST /predict HTTP/1.1\r\nhost: t\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

/// Extracts `name value` from the `/metrics` text exposition.
fn metric_line(metrics: &str, name: &str) -> Option<f64> {
    metrics.lines().find_map(|l| {
        let (n, v) = l.split_once(' ')?;
        (n == name).then(|| v.parse().ok())?
    })
}

#[test]
fn health_endpoints_and_routing() {
    let _g = guard();
    let srv = Running::start(ServeConfig::default());
    let h = get(srv.addr, "/healthz");
    assert_eq!(h.status, 200, "{}", h.body);
    assert!(h.body.contains("\"status\":\"ok\""), "{}", h.body);
    let r = get(srv.addr, "/readyz");
    assert_eq!(r.status, 200, "{}", r.body);
    let m = get(srv.addr, "/metrics");
    assert_eq!(m.status, 200);
    assert!(m.body.contains("serve.http.requests_total"), "{}", m.body);
    assert_eq!(get(srv.addr, "/nope").status, 404);
    let bad_method = send_raw(srv.addr, b"POST /healthz HTTP/1.1\r\ncontent-length: 0\r\n\r\n");
    assert_eq!(bad_method.status, 405);
    let summary = srv.stop();
    assert!(summary.clean_drain);
    assert!(summary.requests >= 5, "{summary:?}");
}

#[test]
fn predict_round_trips_byte_identical_to_sequential() {
    let _g = guard();
    let srv = Running::start(ServeConfig::default());
    let resp = predict(srv.addr, r#"{"kernel":"sdk_vectoradd","blocks":2}"#);
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(resp.headers.get("content-type").map(String::as_str), Some("application/json"));

    let trace = workloads::by_name("sdk_vectoradd").unwrap().with_blocks(2).trace().unwrap();
    let model = Gpumech::new(SimConfig::table1());
    let p = model.run(&PredictionRequest::from_trace(&trace)).unwrap();
    let expected = predict_response_body("sdk_vectoradd", &p).unwrap();
    assert_eq!(resp.body, expected, "served response is not byte-identical to sequential");
    srv.stop();
}

#[test]
fn typed_client_errors() {
    let _g = guard();
    let srv = Running::start(ServeConfig::default());
    for (body, status, code) in [
        ("not json", 400, "bad_json"),
        (r#"{"kernel":"no_such_kernel"}"#, 404, "kernel_not_found"),
        (r#"{"kernel":"sdk_vectoradd","mshrs":0}"#, 422, "invalid_config"),
        (r#"{"kernel":"sdk_vectoradd","policy":"lifo"}"#, 422, "invalid_option"),
        (r#"{"kernel":"sdk_vectoradd","bogus":1}"#, 400, "unknown_field"),
    ] {
        let resp = predict(srv.addr, body);
        assert_eq!(resp.status, status, "{body} -> {}", resp.body);
        assert!(resp.body.contains(&format!("\"error\":\"{code}\"")), "{body} -> {}", resp.body);
    }
    let summary = srv.stop();
    assert_eq!(summary.rejected, 5, "{summary:?}");
}

#[test]
fn load_shed_full_queue_gets_429_and_in_flight_completes_identically() {
    let _g = guard();
    let rec = Arc::new(Recorder::new());
    let _obs = gpumech_obs::install(Arc::clone(&rec));
    let srv = Running::start(ServeConfig {
        workers: 1,
        queue_cap: 1,
        debug_hooks: true,
        ..ServeConfig::default()
    });
    let addr = srv.addr;

    // A occupies the single worker; B fills the single queue slot.
    let body = r#"{"kernel":"sdk_vectoradd","blocks":2,"hold_ms":900}"#;
    let a = std::thread::spawn(move || predict(addr, body));
    std::thread::sleep(Duration::from_millis(250));
    let b = std::thread::spawn(move || predict(addr, body));
    std::thread::sleep(Duration::from_millis(250));

    // The next three connections must shed instantly with Retry-After.
    let mut shed_observed = 0u64;
    for _ in 0..3 {
        let t0 = Instant::now();
        let resp = predict(addr, body);
        assert_eq!(resp.status, 429, "{}", resp.body);
        assert!(t0.elapsed() < Duration::from_millis(500), "shed was not fast");
        assert!(resp.body.contains("\"error\":\"shed\""), "{}", resp.body);
        let secs: u64 = resp.headers.get("retry-after").expect("retry-after").parse().unwrap();
        assert!((1..=30).contains(&secs), "insane Retry-After {secs}s");
        let ms: u64 =
            resp.headers.get("x-retry-after-ms").expect("x-retry-after-ms").parse().unwrap();
        assert!((50..=30_000).contains(&ms), "insane retry ms {ms}");
        shed_observed += 1;
    }

    // In-flight and queued requests complete byte-identically to a
    // sequential in-process run (hold_ms only delays, never perturbs).
    let trace = workloads::by_name("sdk_vectoradd").unwrap().with_blocks(2).trace().unwrap();
    let model = Gpumech::new(SimConfig::table1());
    let p = model.run(&PredictionRequest::from_trace(&trace)).unwrap();
    let expected = predict_response_body("sdk_vectoradd", &p).unwrap();
    for (who, t) in [("A", a), ("B", b)] {
        let resp = t.join().unwrap();
        assert_eq!(resp.status, 200, "{who}: {}", resp.body);
        assert_eq!(resp.body, expected, "{who} not byte-identical");
    }

    // The shed counter matches the observed 429 count — in the /metrics
    // exposition, in the recorder aggregate, and in the run summary.
    let metrics = get(addr, "/metrics");
    assert_eq!(
        metric_line(&metrics.body, "serve.http.shed_total"),
        Some(shed_observed as f64),
        "{}",
        metrics.body
    );
    assert_eq!(
        metric_line(&metrics.body, "serve.http.shed"),
        Some(shed_observed as f64),
        "recorder counter drifted from observed sheds:\n{}",
        metrics.body
    );
    let summary = srv.stop();
    assert_eq!(summary.shed, shed_observed, "{summary:?}");
    assert_eq!(summary.predicts_ok, 2, "{summary:?}");
    let snap = rec.snapshot();
    assert_eq!(snap.counters.get("serve.http.shed").map(|c| c.total), Some(shed_observed));
}

#[test]
fn per_request_deadline_maps_to_504_and_cancels_partial_work() {
    let _g = guard();
    let srv = Running::start(ServeConfig { debug_hooks: true, ..ServeConfig::default() });
    let t0 = Instant::now();
    let resp = predict(
        srv.addr,
        r#"{"kernel":"sdk_vectoradd","blocks":2,"hold_ms":30000,"deadline_ms":150}"#,
    );
    assert_eq!(resp.status, 504, "{}", resp.body);
    assert!(resp.body.contains("\"error\":\"deadline_exceeded\""), "{}", resp.body);
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "deadline did not cancel the hold: {:?}",
        t0.elapsed()
    );
    let metrics = get(srv.addr, "/metrics");
    assert_eq!(metric_line(&metrics.body, "serve.req.deadline_total"), Some(1.0));
    let summary = srv.stop();
    assert_eq!(summary.deadlines, 1, "{summary:?}");
    assert!(summary.clean_drain, "{summary:?}");
}

#[test]
fn graceful_drain_finishes_admitted_work_and_refuses_new() {
    let _g = guard();
    let srv = Running::start(ServeConfig {
        workers: 1,
        debug_hooks: true,
        ..ServeConfig::default()
    });
    let addr = srv.addr;
    let body = r#"{"kernel":"sdk_vectoradd","blocks":2,"hold_ms":800}"#;
    let a = std::thread::spawn(move || predict(addr, body));
    std::thread::sleep(Duration::from_millis(250));
    srv.handle.shutdown();
    std::thread::sleep(Duration::from_millis(100));

    // During drain: health answers, readiness is down, work is refused.
    let h = get(addr, "/healthz");
    assert_eq!(h.status, 200, "{}", h.body);
    let r = get(addr, "/readyz");
    assert_eq!(r.status, 503, "{}", r.body);
    assert!(r.body.contains("draining"), "{}", r.body);
    let refused = predict(addr, r#"{"kernel":"sdk_vectoradd","blocks":2}"#);
    assert_eq!(refused.status, 503, "{}", refused.body);
    assert!(refused.body.contains("\"error\":\"draining\""), "{}", refused.body);

    // The admitted request still completes successfully.
    let resp = a.join().unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let summary = srv.join.join().unwrap();
    assert!(summary.clean_drain, "{summary:?}");
    assert_eq!(summary.predicts_ok, 1, "{summary:?}");
}

#[test]
fn forced_drain_cancels_stragglers_with_a_typed_response() {
    let _g = guard();
    let srv = Running::start(ServeConfig {
        workers: 1,
        drain_ms: 200,
        debug_hooks: true,
        ..ServeConfig::default()
    });
    let addr = srv.addr;
    let a = std::thread::spawn(move || {
        predict(addr, r#"{"kernel":"sdk_vectoradd","blocks":2,"hold_ms":30000}"#)
    });
    std::thread::sleep(Duration::from_millis(250));
    srv.handle.shutdown();
    let resp = a.join().unwrap();
    assert_eq!(resp.status, 503, "{}", resp.body);
    assert!(resp.body.contains("drain deadline"), "{}", resp.body);
    let summary = srv.join.join().unwrap();
    assert!(!summary.clean_drain, "{summary:?}");
}

#[test]
fn slow_loris_times_out_with_408() {
    let _g = guard();
    let srv = Running::start(ServeConfig { read_timeout_ms: 150, ..ServeConfig::default() });
    let mut s = TcpStream::connect(srv.addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // A request that never finishes arriving.
    s.write_all(b"GET /healthz HT").unwrap();
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).unwrap();
    let resp = parse_response(&buf);
    assert_eq!(resp.status, 408, "{}", resp.body);
    assert!(resp.body.contains("request_timeout"), "{}", resp.body);
    srv.stop();
}

#[test]
fn oversized_inputs_map_to_413() {
    let _g = guard();
    let srv = Running::start(ServeConfig {
        max_header_bytes: 256,
        max_body_bytes: 256,
        ..ServeConfig::default()
    });
    // Declared-oversize body: rejected from the Content-Length alone.
    let resp = send_raw(
        srv.addr,
        b"POST /predict HTTP/1.1\r\ncontent-length: 1000000\r\n\r\n",
    );
    assert_eq!(resp.status, 413, "{}", resp.body);
    // Oversize headers: rejected mid-stream without waiting for the end.
    let mut raw = b"GET /healthz HTTP/1.1\r\nx-pad: ".to_vec();
    raw.extend(std::iter::repeat_n(b'a', 4096));
    let resp = send_raw(srv.addr, &raw);
    assert_eq!(resp.status, 413, "{}", resp.body);
    srv.stop();
}

#[test]
fn mid_body_disconnects_leave_the_server_healthy() {
    let _g = guard();
    let srv = Running::start(ServeConfig { read_timeout_ms: 150, ..ServeConfig::default() });
    for _ in 0..5 {
        let mut s = TcpStream::connect(srv.addr).unwrap();
        // Promise 26 bytes, send 7, vanish.
        s.write_all(b"POST /predict HTTP/1.1\r\ncontent-length: 26\r\n\r\n{\"kern")
            .unwrap();
        drop(s);
    }
    // Give the workers a moment to chew through the carcasses, then the
    // server must still answer real requests.
    std::thread::sleep(Duration::from_millis(400));
    let resp = predict(srv.addr, r#"{"kernel":"sdk_vectoradd","blocks":2}"#);
    assert_eq!(resp.status, 200, "{}", resp.body);
    srv.stop();
}

#[test]
fn warm_kernels_gate_readiness() {
    let _g = guard();
    let srv = Running::start(ServeConfig {
        warm: vec!["sdk_vectoradd".to_string()],
        ..ServeConfig::default()
    });
    // Warming may finish fast; poll until ready (bounded).
    let t0 = Instant::now();
    loop {
        let r = get(srv.addr, "/readyz");
        if r.status == 200 {
            break;
        }
        assert!(r.body.contains("warming"), "{}", r.body);
        assert!(t0.elapsed() < Duration::from_secs(30), "never became ready");
        std::thread::sleep(Duration::from_millis(50));
    }
    let resp = predict(srv.addr, r#"{"kernel":"sdk_vectoradd"}"#);
    assert_eq!(resp.status, 200, "{}", resp.body);
    srv.stop();
}
