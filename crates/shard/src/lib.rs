//! Fleet-scale sharded sweeps: deterministic partitioning, verified
//! merges, and a crash-tolerant local supervisor.
//!
//! A sweep at fleet scale is run as N independent `gpumech batch --shard
//! i/N` processes, each owning a deterministic subset of the job space
//! and writing its own journal and result file. This crate supplies the
//! three layers that make that safe to run unattended:
//!
//! 1. **Partitioning** ([`partition`]) — shard ownership is a pure
//!    function of the stable job fingerprint (splitmix64 over the same
//!    fingerprint the resume journal keys on), so any shard's job set is
//!    reproducible, independent of enumeration order, and provably
//!    disjoint from every other shard's.
//! 2. **Manifest + report** ([`manifest`], [`report`]) — every shard
//!    result file is stamped with a [`SweepManifest`] naming the sweep
//!    fingerprint, shard index/count, git commit, and configuration
//!    fingerprint, plus the full fingerprint list of the sweep — enough
//!    for a later merge to verify disjoint *and complete* coverage
//!    without re-deriving anything.
//! 3. **Merge** ([`merge`]) — unions shard result files, rejecting
//!    cross-sweep mixes, quarantining corrupt or torn files, resolving
//!    duplicate jobs by byte-equality, and verifying that the union
//!    covers the manifest exactly. Every violation is a typed
//!    [`MergeFinding`]; a merge with findings produces no output (never
//!    a silent partial merge). The merged file's job rows are spliced
//!    byte-for-byte from the shard files, so a clean merge is
//!    byte-identical (from the `jobs_checksum` field on) to the same
//!    sweep run unsharded.
//! 4. **Supervisor** ([`supervise()`]) — a local multi-process supervisor
//!    that spawns the N shard children, watches their journals as
//!    heartbeats, restarts crashed or hung shards with jittered backoff
//!    and `--resume`, enforces a per-shard restart budget and a
//!    whole-sweep deadline, and drains cleanly on SIGTERM.
//!
//! Everything is instrumented under the `shard.*` metric family
//! (`shard.partition.*`, `shard.merge.*`, `shard.supervisor.*`).

pub mod manifest;
pub mod merge;
pub mod partition;
pub mod report;
pub mod supervise;

use std::fmt;

pub use manifest::{fingerprint_hex, parse_fingerprint, SweepManifest};
pub use merge::{merge_files, verify_expectation, FindingKind, MergeFinding, MergeOptions,
                MergeOutcome, MergedSweep};
pub use partition::{rejected_fingerprint, shard_of, sweep_fingerprint, ShardSpec};
pub use report::{load_shard_file, rows_checksum, CounterEntry, JobRow, ShardFile, SweepReport};
pub use supervise::{supervise, ChaosKill, ShardStatus, SupervisorConfig, SupervisorSummary};

/// Error produced by the sharding layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// A shard spec (`i/N`), chaos spec (`i@lines`), or other textual
    /// input failed to parse.
    BadSpec(String),
    /// A filesystem operation failed.
    Io {
        /// Path the operation touched.
        path: String,
        /// Rendered I/O error.
        msg: String,
    },
    /// Serializing or deserializing a sweep artifact failed.
    Serialize(String),
    /// Spawning a shard child process failed.
    Spawn {
        /// The shard whose child could not be spawned.
        shard: u32,
        /// Rendered spawn error.
        msg: String,
    },
    /// A shard kept dying: it was spawned `spawns` times (the first run
    /// plus restarts) and the restart budget is exhausted.
    RestartBudgetExhausted {
        /// The shard that exhausted its budget.
        shard: u32,
        /// Total times it was spawned.
        spawns: u32,
    },
    /// The whole-sweep deadline fired before every shard completed.
    DeadlineExceeded {
        /// The configured deadline in milliseconds.
        ms: u64,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::BadSpec(s) => write!(f, "bad shard spec: {s}"),
            ShardError::Io { path, msg } => write!(f, "io error on {path}: {msg}"),
            ShardError::Serialize(s) => write!(f, "serialize error: {s}"),
            ShardError::Spawn { shard, msg } => {
                write!(f, "failed to spawn shard {shard}: {msg}")
            }
            ShardError::RestartBudgetExhausted { shard, spawns } => write!(
                f,
                "shard {shard} exhausted its restart budget after {spawns} spawn(s)"
            ),
            ShardError::DeadlineExceeded { ms } => {
                write!(f, "sweep deadline of {ms} ms exceeded before all shards completed")
            }
        }
    }
}

impl std::error::Error for ShardError {}
