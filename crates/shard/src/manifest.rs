//! The sweep manifest: provenance and coverage metadata stamped into
//! every shard result file.
//!
//! A manifest names the sweep (its fingerprint over the full job list),
//! the shard that produced the file, the git commit and machine
//! configuration it ran under, and the complete fingerprint list of the
//! sweep in enumeration order. Two shard files belong to the same sweep
//! iff their manifests agree on everything except the shard index — the
//! check [`merge`](crate::merge) runs before unioning anything.

use serde::{Deserialize, Serialize};

use crate::partition::{sweep_fingerprint, ShardSpec};

/// Provenance and coverage stamp for one shard result file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepManifest {
    /// Content hash of the sweep identity (config fingerprint + job
    /// fingerprint list), hex-encoded. See
    /// [`crate::partition::sweep_fingerprint`].
    pub sweep_fingerprint: String,
    /// Index of the shard that produced this file.
    pub shard_index: u32,
    /// Total shards in the sweep.
    pub shard_count: u32,
    /// Git commit of the producing build (`unknown` outside a checkout).
    pub git_commit: String,
    /// Fingerprint of the base machine configuration
    /// ([`analysis_config_fingerprint`](gpumech_exec::analysis_config_fingerprint)),
    /// hex-encoded.
    pub config_fingerprint: String,
    /// Total jobs in the sweep (always `jobs.len()`; duplicated so a
    /// truncated `jobs` array is detectable).
    pub total_jobs: u64,
    /// Every job fingerprint in the sweep, hex-encoded, in enumeration
    /// order — the coverage ground truth the merge verifies against.
    pub jobs: Vec<String>,
}

/// Formats a fingerprint the way every sweep artifact stores it.
#[must_use]
pub fn fingerprint_hex(fp: u64) -> String {
    format!("{fp:016x}")
}

/// Parses a stored fingerprint back; `None` if it is not 16 hex digits.
#[must_use]
pub fn parse_fingerprint(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

impl SweepManifest {
    /// The manifest for shard `shard` of a sweep enumerating `job_fps`
    /// (in enumeration order) under `config_fingerprint` at `git_commit`.
    #[must_use]
    pub fn new(shard: ShardSpec, git_commit: &str, config_fingerprint: u64, job_fps: &[u64]) -> Self {
        Self {
            sweep_fingerprint: fingerprint_hex(sweep_fingerprint(config_fingerprint, job_fps)),
            shard_index: shard.index,
            shard_count: shard.count,
            git_commit: git_commit.to_string(),
            config_fingerprint: fingerprint_hex(config_fingerprint),
            total_jobs: job_fps.len() as u64,
            jobs: job_fps.iter().map(|&fp| fingerprint_hex(fp)).collect(),
        }
    }

    /// `true` when `other` belongs to the same sweep: every field agrees
    /// except the shard index. The shard *count* must agree too — a file
    /// from a 3-shard run cannot be unioned with files from a 5-shard run
    /// of the same job space, because their ownership functions differ.
    #[must_use]
    pub fn same_sweep(&self, other: &Self) -> bool {
        self.sweep_fingerprint == other.sweep_fingerprint
            && self.shard_count == other.shard_count
            && self.git_commit == other.git_commit
            && self.config_fingerprint == other.config_fingerprint
            && self.total_jobs == other.total_jobs
            && self.jobs == other.jobs
    }

    /// The decoded job fingerprint list.
    ///
    /// # Errors
    ///
    /// Names the first malformed entry.
    pub fn job_fps(&self) -> Result<Vec<u64>, String> {
        let mut out = Vec::with_capacity(self.jobs.len());
        for (i, s) in self.jobs.iter().enumerate() {
            match parse_fingerprint(s) {
                Some(fp) => out.push(fp),
                None => return Err(format!("manifest job {i} is not a fingerprint: {s:?}")),
            }
        }
        Ok(out)
    }

    /// Internal consistency of one manifest: the declared total matches
    /// the job list and every entry decodes.
    ///
    /// # Errors
    ///
    /// A one-line description of the inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.total_jobs != self.jobs.len() as u64 {
            return Err(format!(
                "manifest declares {} job(s) but lists {}",
                self.total_jobs,
                self.jobs.len()
            ));
        }
        if self.shard_count == 0 {
            return Err("manifest shard_count is zero".to_string());
        }
        if self.shard_index >= self.shard_count {
            return Err(format!(
                "manifest shard_index {} out of range for {} shard(s)",
                self.shard_index, self.shard_count
            ));
        }
        if parse_fingerprint(&self.sweep_fingerprint).is_none() {
            return Err(format!("manifest sweep_fingerprint malformed: {:?}", self.sweep_fingerprint));
        }
        self.job_fps().map(|_| ())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn manifest(shard: ShardSpec) -> SweepManifest {
        SweepManifest::new(shard, "abc123", 7, &[10, 20, 30])
    }

    #[test]
    fn same_sweep_ignores_only_the_shard_index() {
        let a = manifest(ShardSpec { index: 0, count: 3 });
        let b = manifest(ShardSpec { index: 2, count: 3 });
        assert!(a.same_sweep(&b));
        let fewer = SweepManifest::new(ShardSpec { index: 0, count: 3 }, "abc123", 7, &[10, 20]);
        assert!(!a.same_sweep(&fewer));
        let other_commit = SweepManifest::new(ShardSpec { index: 0, count: 3 }, "def456", 7, &[10, 20, 30]);
        assert!(!a.same_sweep(&other_commit));
        let other_count = manifest(ShardSpec { index: 0, count: 4 });
        assert!(!a.same_sweep(&other_count), "different shard counts cannot mix");
    }

    #[test]
    fn manifest_round_trips_and_validates() {
        let m = manifest(ShardSpec { index: 1, count: 3 });
        m.validate().unwrap();
        assert_eq!(m.job_fps().unwrap(), vec![10, 20, 30]);
        let json = serde_json::to_string(&m).unwrap();
        let back: SweepManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);

        let mut torn = m.clone();
        torn.jobs.pop();
        assert!(torn.validate().is_err(), "truncated job list must be detected");
        let mut bad = m.clone();
        bad.jobs[0] = "nope".to_string();
        assert!(bad.validate().is_err());
        let mut oob = m;
        oob.shard_index = 9;
        assert!(oob.validate().is_err());
    }

    #[test]
    fn fingerprints_round_trip_through_hex() {
        for fp in [0u64, 1, u64::MAX, 0xdead_beef] {
            assert_eq!(parse_fingerprint(&fingerprint_hex(fp)), Some(fp));
        }
        assert_eq!(parse_fingerprint("123"), None);
        assert_eq!(parse_fingerprint("zzzzzzzzzzzzzzzz"), None);
    }
}
