//! The verified merge: union shard result files into one sweep report,
//! or produce typed findings explaining exactly why that would be unsafe.
//!
//! The merge never guesses. Every file is fully verified on load (JSON
//! shape, manifest consistency, `jobs_checksum`); corrupt or torn files
//! are quarantined (`<path>.quarantine`) with a typed finding. Files from
//! different sweeps (mismatched sweep/config fingerprints, commits, or
//! shard counts) are rejected. Every row must be owned by the shard that
//! wrote it (overlapping assignments are findings), belong to the
//! manifest (unknown jobs are findings), and duplicates are resolved by
//! byte-equality (diverging duplicates are findings). Finally the union
//! must cover the manifest *exactly* — a missing shard or a missing row
//! is a finding, never a silent partial merge.
//!
//! Any finding means no merged output is produced; the CLI maps that to
//! exit code 5.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::path::{Path, PathBuf};

use crate::manifest::SweepManifest;
use crate::partition::shard_of;
use crate::report::{load_shard_file, render_parts, rows_checksum, write_atomic, CounterEntry,
                    ShardFile, SweepReport};

/// What kind of merge violation a finding reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// The file failed verification on load (unreadable, malformed JSON,
    /// inconsistent manifest, torn tail, or checksum mismatch). The file
    /// is quarantined.
    CorruptShardFile,
    /// The file's manifest disagrees with the other shards' — it belongs
    /// to a different sweep (or a different shard count of this sweep).
    CrossSweepMix,
    /// A shard index required by the manifest has no (valid) file.
    MissingShard,
    /// The same job appears in more than one file with different bytes.
    DuplicateJobConflict,
    /// A row appears in a file whose shard does not own its fingerprint
    /// (overlapping or misassigned shard work).
    MisassignedJob,
    /// A row's fingerprint is not in the sweep manifest.
    UnknownJob,
    /// A manifest job is covered by no row even though its owning shard's
    /// file is present.
    CoverageGap,
    /// A shard journal contains a corrupt or foreign line.
    JournalCorrupt,
    /// The merged output does not match the `--expect` reference run.
    ExpectationMismatch,
}

impl FindingKind {
    /// Stable kebab-case code for reports.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            FindingKind::CorruptShardFile => "corrupt-shard-file",
            FindingKind::CrossSweepMix => "cross-sweep-mix",
            FindingKind::MissingShard => "missing-shard",
            FindingKind::DuplicateJobConflict => "duplicate-job-conflict",
            FindingKind::MisassignedJob => "misassigned-job",
            FindingKind::UnknownJob => "unknown-job",
            FindingKind::CoverageGap => "coverage-gap",
            FindingKind::JournalCorrupt => "journal-corrupt",
            FindingKind::ExpectationMismatch => "expectation-mismatch",
        }
    }
}

/// One typed merge violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeFinding {
    /// What kind of violation.
    pub kind: FindingKind,
    /// The file the violation was found in (or about).
    pub path: String,
    /// One-line description with enough identity to act on.
    pub detail: String,
}

impl fmt::Display for MergeFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.kind.code(), self.path, self.detail)
    }
}

/// Merge configuration.
#[derive(Debug, Clone, Default)]
pub struct MergeOptions {
    /// Rename files that fail load-verification to `<path>.quarantine`
    /// (the cache-layer convention) instead of leaving them in place.
    pub quarantine: bool,
    /// Shard journals to cross-check: every line must parse as a journal
    /// entry whose fingerprint belongs to the manifest.
    pub journals: Vec<PathBuf>,
}

/// A verified merged sweep, ready to render.
#[derive(Debug, Clone)]
pub struct MergedSweep {
    /// The merged manifest (shard 0 of 1: the merge *is* the whole sweep).
    pub manifest: SweepManifest,
    /// Sum of shard worker counts (informational).
    pub workers: u64,
    /// Sum of shard cache entries (informational).
    pub cache_entries: u64,
    /// Counters summed across shards by name.
    pub counters: Vec<CounterEntry>,
    /// Raw row text per job, in manifest enumeration order, spliced
    /// byte-for-byte from the shard files.
    pub raw_rows: Vec<String>,
    /// Parsed rows, parallel to `raw_rows`.
    pub rows: Vec<crate::report::JobRow>,
}

/// The outcome of a merge attempt.
#[derive(Debug, Clone)]
pub struct MergeOutcome {
    /// The merged sweep — present only when there are no findings.
    pub merged: Option<MergedSweep>,
    /// Every violation, in discovery order.
    pub findings: Vec<MergeFinding>,
    /// Benign observations (identical duplicates resolved, etc.).
    pub notes: Vec<String>,
    /// Files quarantined during the merge.
    pub quarantined: Vec<String>,
    /// Files that loaded and verified cleanly.
    pub files_ok: usize,
}

/// Merges the shard result files at `paths`.
///
/// Infallible at the API level: every problem is a typed finding in the
/// returned [`MergeOutcome`], and `merged` is `Some` iff there are none.
#[must_use]
pub fn merge_files(paths: &[PathBuf], opts: &MergeOptions) -> MergeOutcome {
    let _span = gpumech_obs::span!("shard.merge.run", files = paths.len());
    let mut findings: Vec<MergeFinding> = Vec::new();
    let mut notes: Vec<String> = Vec::new();
    let mut quarantined: Vec<String> = Vec::new();

    // Load + verify every file; corrupt files become findings (and are
    // quarantined), the rest proceed.
    let mut files: Vec<(String, ShardFile)> = Vec::new();
    for path in paths {
        let shown = path.display().to_string();
        match load_shard_file(path) {
            Ok(f) => files.push((shown, f)),
            Err(detail) => {
                gpumech_obs::counter!("shard.merge.corrupt_files");
                findings.push(MergeFinding {
                    kind: FindingKind::CorruptShardFile,
                    path: shown.clone(),
                    detail,
                });
                if opts.quarantine {
                    let target = quarantine_path(path);
                    if std::fs::rename(path, &target).is_ok() {
                        quarantined.push(target.display().to_string());
                    }
                }
            }
        }
    }
    let files_ok = files.len();
    gpumech_obs::counter!("shard.merge.files", files_ok as u64);

    let Some((_, first)) = files.first() else {
        findings.push(MergeFinding {
            kind: FindingKind::MissingShard,
            path: String::new(),
            detail: "no valid shard files to merge".to_string(),
        });
        return finish(None, findings, notes, quarantined, files_ok);
    };
    let reference = first.report.manifest.clone();

    // Cross-sweep rejection: every manifest must agree with the first
    // (modulo shard index).
    for (shown, f) in &files {
        if !f.report.manifest.same_sweep(&reference) {
            findings.push(MergeFinding {
                kind: FindingKind::CrossSweepMix,
                path: shown.clone(),
                detail: format!(
                    "manifest disagrees with {}: sweep {} vs {}, {} vs {} shard(s), \
                     commit {:?} vs {:?}",
                    paths.first().map_or_else(String::new, |p| p.display().to_string()),
                    f.report.manifest.sweep_fingerprint,
                    reference.sweep_fingerprint,
                    f.report.manifest.shard_count,
                    reference.shard_count,
                    f.report.manifest.git_commit,
                    reference.git_commit,
                ),
            });
        }
    }
    if findings.iter().any(|f| f.kind == FindingKind::CrossSweepMix) {
        return finish(None, findings, notes, quarantined, files_ok);
    }

    let manifest_fps: Vec<u64> = match reference.job_fps() {
        Ok(fps) => fps,
        Err(detail) => {
            findings.push(MergeFinding {
                kind: FindingKind::CorruptShardFile,
                path: files[0].0.clone(),
                detail,
            });
            return finish(None, findings, notes, quarantined, files_ok);
        }
    };
    let manifest_set: BTreeSet<u64> = manifest_fps.iter().copied().collect();
    let count = reference.shard_count;

    // Union rows: fingerprint -> (raw bytes, source path). Duplicates are
    // resolved by byte equality; divergence is a conflict finding.
    let mut union: HashMap<u64, (String, String)> = HashMap::new();
    let mut present_shards: BTreeSet<u32> = BTreeSet::new();
    for (shown, f) in &files {
        present_shards.insert(f.report.manifest.shard_index);
        for (i, fp) in f.row_fps.iter().enumerate() {
            let raw = &f.raw_rows[i];
            let label = &f.report.jobs[i].label;
            if !manifest_set.contains(fp) {
                findings.push(MergeFinding {
                    kind: FindingKind::UnknownJob,
                    path: shown.clone(),
                    detail: format!("row {i} ({label:?}, {fp:016x}) is not in the sweep manifest"),
                });
                continue;
            }
            let owner = shard_of(*fp, count);
            if owner != f.report.manifest.shard_index {
                findings.push(MergeFinding {
                    kind: FindingKind::MisassignedJob,
                    path: shown.clone(),
                    detail: format!(
                        "row {i} ({label:?}, {fp:016x}) belongs to shard {owner}, not shard {} \
                         (overlapping shard assignment)",
                        f.report.manifest.shard_index
                    ),
                });
                continue;
            }
            match union.get(fp) {
                None => {
                    union.insert(*fp, (raw.clone(), shown.clone()));
                }
                Some((existing, from)) if existing == raw => {
                    notes.push(format!(
                        "job {label:?} ({fp:016x}) duplicated byte-identically in {from} and \
                         {shown}; kept one copy"
                    ));
                }
                Some((_, from)) => {
                    findings.push(MergeFinding {
                        kind: FindingKind::DuplicateJobConflict,
                        path: shown.clone(),
                        detail: format!(
                            "job {label:?} ({fp:016x}) also present in {from} with different \
                             bytes — refusing to pick one"
                        ),
                    });
                }
            }
        }
    }

    // Coverage: every shard index must have contributed a file, and every
    // manifest job must be covered. A wholly missing shard is reported
    // once (not once per job it owned).
    for shard in 0..count {
        if !present_shards.contains(&shard) {
            let owned = manifest_fps.iter().filter(|&&fp| shard_of(fp, count) == shard).count();
            findings.push(MergeFinding {
                kind: FindingKind::MissingShard,
                path: String::new(),
                detail: format!(
                    "no valid file for shard {shard}/{count} ({owned} job(s) uncovered)"
                ),
            });
        }
    }
    for fp in &manifest_set {
        let owner = shard_of(*fp, count);
        if !union.contains_key(fp) && present_shards.contains(&owner) {
            findings.push(MergeFinding {
                kind: FindingKind::CoverageGap,
                path: String::new(),
                detail: format!(
                    "manifest job {fp:016x} missing from shard {owner}'s file (incomplete run?)"
                ),
            });
        }
    }

    // Journal cross-check: every line must be a parseable journal entry
    // whose fingerprint belongs to the manifest.
    for journal in &opts.journals {
        check_journal(journal, &manifest_set, &mut findings);
    }

    gpumech_obs::counter!("shard.merge.findings", findings.len() as u64);
    if !findings.is_empty() {
        return finish(None, findings, notes, quarantined, files_ok);
    }

    // Clean: splice rows in manifest enumeration order. Repeated manifest
    // fingerprints (legal: enumeration defines multiplicity) emit their
    // row text once per occurrence, matching the unsharded writer.
    let mut raw_rows = Vec::with_capacity(manifest_fps.len());
    let mut rows = Vec::with_capacity(manifest_fps.len());
    let by_fp: HashMap<u64, &crate::report::JobRow> = files
        .iter()
        .flat_map(|(_, f)| f.row_fps.iter().copied().zip(f.report.jobs.iter()))
        .collect();
    for fp in &manifest_fps {
        if let (Some((raw, _)), Some(row)) = (union.get(fp), by_fp.get(fp)) {
            raw_rows.push(raw.clone());
            rows.push((*row).clone());
        }
    }
    gpumech_obs::counter!("shard.merge.rows", raw_rows.len() as u64);

    let mut counter_sums: BTreeMap<String, u64> = BTreeMap::new();
    let mut workers = 0u64;
    let mut cache_entries = 0u64;
    for (_, f) in &files {
        workers += f.report.workers;
        cache_entries += f.report.cache_entries;
        for c in &f.report.counters {
            *counter_sums.entry(c.name.clone()).or_insert(0) += c.total;
        }
    }
    let merged = MergedSweep {
        manifest: SweepManifest {
            shard_index: 0,
            shard_count: 1,
            ..reference
        },
        workers,
        cache_entries,
        counters: counter_sums
            .into_iter()
            .map(|(name, total)| CounterEntry { name, total })
            .collect(),
        raw_rows,
        rows,
    };
    finish(Some(merged), findings, notes, quarantined, files_ok)
}

fn finish(
    merged: Option<MergedSweep>,
    findings: Vec<MergeFinding>,
    notes: Vec<String>,
    quarantined: Vec<String>,
    files_ok: usize,
) -> MergeOutcome {
    MergeOutcome { merged, findings, notes, quarantined, files_ok }
}

/// `<path>.quarantine`, the same convention the disk cache uses.
fn quarantine_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".quarantine");
    PathBuf::from(name)
}

/// Verifies one shard journal against the manifest fingerprint set.
fn check_journal(path: &Path, manifest: &BTreeSet<u64>, findings: &mut Vec<MergeFinding>) {
    let shown = path.display().to_string();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            findings.push(MergeFinding {
                kind: FindingKind::JournalCorrupt,
                path: shown,
                detail: format!("read: {e}"),
            });
            return;
        }
    };
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let lineno = i + 1;
        let entry: Result<gpumech_exec::resilience::JournalEntry, _> =
            serde_json::from_str(line);
        match entry {
            Err(_) => findings.push(MergeFinding {
                kind: FindingKind::JournalCorrupt,
                path: shown.clone(),
                detail: format!("line {lineno} does not parse as a journal entry (torn tail?)"),
            }),
            Ok(e) => match crate::manifest::parse_fingerprint(&e.fingerprint) {
                None => findings.push(MergeFinding {
                    kind: FindingKind::JournalCorrupt,
                    path: shown.clone(),
                    detail: format!("line {lineno} fingerprint malformed: {:?}", e.fingerprint),
                }),
                Some(fp) if !manifest.contains(&fp) => findings.push(MergeFinding {
                    kind: FindingKind::JournalCorrupt,
                    path: shown.clone(),
                    detail: format!(
                        "line {lineno} ({:?}, {fp:016x}) is not a job of this sweep",
                        e.label
                    ),
                }),
                Some(_) => {}
            },
        }
    }
}

impl MergedSweep {
    /// Renders the merged file in the canonical shard-file layout.
    ///
    /// # Errors
    ///
    /// Serialization failure, rendered.
    pub fn render_json(&self) -> Result<String, String> {
        let manifest = serde_json::to_string(&self.manifest).map_err(|e| e.to_string())?;
        let counters = serde_json::to_string(&self.counters).map_err(|e| e.to_string())?;
        Ok(render_parts(&manifest, self.workers, self.cache_entries, &counters, &self.raw_rows))
    }

    /// Writes the merged file atomically.
    ///
    /// # Errors
    ///
    /// Serialization or I/O failure, rendered.
    pub fn write_json(&self, path: &Path) -> Result<(), String> {
        write_atomic(path, &self.render_json()?)
    }

    /// The markdown sweep report: per-kernel CPI stacks, the
    /// error-vs-oracle table, failures, and cache/resilience counters.
    #[must_use]
    pub fn render_markdown(&self) -> String {
        let ok = self.rows.iter().filter(|r| r.error.is_none()).count();
        let failed = self.rows.len() - ok;
        let mut out = String::from("# GPUMech sweep report\n\n");
        out.push_str(&format!(
            "- sweep fingerprint: `{}`\n- config fingerprint: `{}`\n- git commit: `{}`\n\
             - jobs: {} ({ok} ok, {failed} failed)\n\n",
            self.manifest.sweep_fingerprint,
            self.manifest.config_fingerprint,
            self.manifest.git_commit,
            self.rows.len(),
        ));

        out.push_str("## Per-kernel CPI stacks\n\n");
        out.push_str("| job | BASE | DEP | L1 | L2 | DRAM | MSHR | QUEUE | CPI | IPC |\n");
        out.push_str("|---|---|---|---|---|---|---|---|---|---|\n");
        for r in &self.rows {
            let Some(stack) = &r.stack else { continue };
            out.push_str(&format!(
                "| {} | {:.3} | {:.3} | {:.3} | {:.3} | {:.3} | {:.3} | {:.3} | {:.3} | {:.3} |\n",
                r.label,
                stack.base,
                stack.dep,
                stack.l1,
                stack.l2,
                stack.dram,
                stack.mshr,
                stack.queue,
                r.cpi.unwrap_or(f64::NAN),
                r.ipc.unwrap_or(f64::NAN),
            ));
        }

        out.push_str("\n## Model vs oracle\n\n");
        let with_oracle: Vec<&crate::report::JobRow> =
            self.rows.iter().filter(|r| r.oracle_cpi.is_some() && r.cpi.is_some()).collect();
        if with_oracle.is_empty() {
            out.push_str("_no oracle data recorded (run with `--oracle`)_\n");
        } else {
            out.push_str("| job | model CPI | oracle CPI | error |\n|---|---|---|---|\n");
            let mut sum_err = 0.0f64;
            for r in &with_oracle {
                let (cpi, oracle) = (r.cpi.unwrap_or(f64::NAN), r.oracle_cpi.unwrap_or(f64::NAN));
                let err = if oracle.abs() > f64::EPSILON {
                    (cpi - oracle).abs() / oracle
                } else {
                    f64::NAN
                };
                if err.is_finite() {
                    sum_err += err;
                }
                out.push_str(&format!(
                    "| {} | {cpi:.3} | {oracle:.3} | {:.1}% |\n",
                    r.label,
                    100.0 * err
                ));
            }
            out.push_str(&format!(
                "\nmean absolute CPI error: {:.1}% over {} job(s)\n",
                100.0 * sum_err / with_oracle.len() as f64,
                with_oracle.len()
            ));
        }

        if failed > 0 {
            out.push_str("\n## Failures\n\n");
            for r in self.rows.iter().filter(|r| r.error.is_some()) {
                out.push_str(&format!(
                    "- `{}`: {}\n",
                    r.label,
                    r.error.as_deref().unwrap_or("")
                ));
            }
        }

        out.push_str("\n## Cache & resilience counters\n\n");
        if self.counters.is_empty() {
            out.push_str("_none recorded_\n");
        } else {
            out.push_str("| counter | total |\n|---|---|\n");
            for c in &self.counters {
                out.push_str(&format!("| `{}` | {} |\n", c.name, c.total));
            }
        }
        out
    }

    /// The merged sweep as a [`SweepReport`] (for tests and round trips).
    #[must_use]
    pub fn to_report(&self) -> SweepReport {
        SweepReport {
            manifest: self.manifest.clone(),
            workers: self.workers,
            cache_entries: self.cache_entries,
            counters: self.counters.clone(),
            jobs_checksum: rows_checksum(&self.raw_rows),
            jobs: self.rows.clone(),
        }
    }
}

/// Compares a merged rendering against a reference (unsharded) run's file
/// text, from the `jobs_checksum` field on — the byte-identity contract.
/// Everything before that field (workers, counters, shard index) is
/// legitimately run-dependent. Returns `None` on a match, or a one-line
/// mismatch description.
#[must_use]
pub fn verify_expectation(merged_text: &str, expect_text: &str) -> Option<String> {
    let key = "\"jobs_checksum\"";
    let tail = |text: &str| text.find(key).map(|i| text[i..].to_string());
    match (tail(merged_text), tail(expect_text)) {
        (None, _) => Some("merged output has no jobs_checksum field".to_string()),
        (_, None) => Some("reference file has no jobs_checksum field".to_string()),
        (Some(a), Some(b)) if a == b => None,
        (Some(a), Some(b)) => {
            // Name the first differing line for the report.
            let line = a
                .lines()
                .zip(b.lines())
                .position(|(x, y)| x != y)
                .map_or_else(|| "lengths differ".to_string(), |i| format!("first at line {i}"));
            Some(format!(
                "merged jobs differ from the reference run ({line} after jobs_checksum)"
            ))
        }
    }
}
