//! Deterministic job partitioning: which shard owns which job.
//!
//! Ownership is a pure function of the stable job fingerprint — the same
//! fingerprint the resume journal keys on
//! ([`job_fingerprint`](gpumech_exec::job_fingerprint)) — avalanched
//! through splitmix64 and reduced modulo the shard count. That gives the
//! three properties the merge verifier depends on:
//!
//! * **Reproducible** — any machine enumerating the same sweep computes
//!   the same shard for every job; no coordination, no state.
//! * **Order-independent** — ownership depends only on the fingerprint,
//!   never on the position of a job in the enumeration, so reordering the
//!   kernel list cannot move a job between shards.
//! * **Provably disjoint and complete** — `shard_of` is a total function
//!   onto `0..count`, so the shard job sets partition the sweep exactly.

use std::fmt;
use std::str::FromStr;

use gpumech_exec::cache::payload_checksum;
use gpumech_trace::splitmix64;

use crate::ShardError;

/// Salt mixed into the ownership hash so shard assignment is not
/// correlated with the journal keying of the same fingerprint.
const SHARD_SALT: u64 = 0x5348_4152_445f_5631; // "SHARD_V1"

/// One shard's identity within a sweep: index `i` of `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardSpec {
    /// This shard's index, `0 <= index < count`.
    pub index: u32,
    /// Total shards in the sweep (at least 1).
    pub count: u32,
}

impl ShardSpec {
    /// The trivial single-shard spec (an unsharded run).
    #[must_use]
    pub fn single() -> Self {
        Self { index: 0, count: 1 }
    }

    /// `true` when this spec describes an unsharded run.
    #[must_use]
    pub fn is_single(self) -> bool {
        self.count == 1
    }

    /// `true` when this shard owns the job with fingerprint `fp`.
    #[must_use]
    pub fn owns(self, fp: u64) -> bool {
        shard_of(fp, self.count) == self.index
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

impl FromStr for ShardSpec {
    type Err = ShardError;

    /// Parses `i/N` with `N >= 1` and `i < N`.
    fn from_str(s: &str) -> Result<Self, ShardError> {
        let bad = || ShardError::BadSpec(format!("{s:?} (expected i/N with 0 <= i < N)"));
        let (i, n) = s.split_once('/').ok_or_else(bad)?;
        let index: u32 = i.parse().map_err(|_| bad())?;
        let count: u32 = n.parse().map_err(|_| bad())?;
        if count == 0 || index >= count {
            return Err(bad());
        }
        Ok(Self { index, count })
    }
}

/// The shard that owns the job with fingerprint `fp` in a `count`-shard
/// sweep. Pure, total, and independent of enumeration order; `count == 0`
/// is treated as 1 (everything owned by shard 0) so the function is total.
#[must_use]
pub fn shard_of(fp: u64, count: u32) -> u32 {
    let count = count.max(1);
    // Avalanche before reduction: job fingerprints are already hashes,
    // but the extra mix decorrelates ownership from journal keying and
    // keeps the modulo unbiased across any fingerprint structure.
    #[allow(clippy::cast_possible_truncation)]
    let bucket = (splitmix64(fp ^ SHARD_SALT) % u64::from(count)) as u32;
    bucket
}

/// The sweep fingerprint: a content hash of the sweep's identity — the
/// base configuration fingerprint plus the full job-fingerprint list in
/// enumeration order. Two runs agree on this value iff they enumerate the
/// same job space, which is exactly what a merge needs to verify before
/// unioning shard files. The shard *count* is deliberately excluded: a
/// 3-shard sweep and the same sweep run unsharded are the same sweep.
#[must_use]
pub fn sweep_fingerprint(config_fingerprint: u64, job_fps: &[u64]) -> u64 {
    let mut blob = format!("{config_fingerprint:016x}|{}|", job_fps.len());
    for fp in job_fps {
        blob.push_str(&format!("{fp:016x},"));
    }
    payload_checksum(blob.as_bytes())
}

/// Synthetic fingerprint for a job whose kernel was rejected by static
/// verification before tracing: no trace exists to fingerprint, but the
/// job must still appear in the sweep manifest (every shard skips it with
/// the same typed error row) and shard deterministically. The label is
/// unique per sweep point, so it is sufficient identity.
#[must_use]
pub fn rejected_fingerprint(label: &str) -> u64 {
    payload_checksum(format!("rejected|{label}").as_bytes())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_and_rejects() {
        let s: ShardSpec = "2/5".parse().unwrap();
        assert_eq!(s, ShardSpec { index: 2, count: 5 });
        assert_eq!(s.to_string(), "2/5");
        for bad in ["", "3", "3/", "/3", "5/5", "6/5", "0/0", "a/b", "1/2/3"] {
            assert!(bad.parse::<ShardSpec>().is_err(), "{bad:?} should be rejected");
        }
        assert!(ShardSpec::single().is_single());
        assert!(!s.is_single());
    }

    #[test]
    fn ownership_is_a_total_disjoint_cover() {
        for count in [1u32, 2, 3, 7, 16] {
            for fp in (0..500u64).map(splitmix64) {
                let owner = shard_of(fp, count);
                assert!(owner < count);
                let owners: Vec<u32> = (0..count)
                    .filter(|&i| ShardSpec { index: i, count }.owns(fp))
                    .collect();
                assert_eq!(owners, vec![owner], "exactly one owner per fingerprint");
            }
        }
    }

    #[test]
    fn sweep_fingerprint_tracks_job_set_and_order() {
        let fps = [1u64, 2, 3];
        let a = sweep_fingerprint(42, &fps);
        assert_eq!(a, sweep_fingerprint(42, &fps), "deterministic");
        assert_ne!(a, sweep_fingerprint(43, &fps), "config matters");
        assert_ne!(a, sweep_fingerprint(42, &[1, 2]), "job set matters");
        assert_ne!(a, sweep_fingerprint(42, &[3, 2, 1]), "enumeration order matters");
    }

    #[test]
    fn rejected_fingerprints_are_stable_and_distinct() {
        assert_eq!(rejected_fingerprint("k @ bw=96"), rejected_fingerprint("k @ bw=96"));
        assert_ne!(rejected_fingerprint("k @ bw=96"), rejected_fingerprint("k @ bw=192"));
    }
}
