//! The shard result file: the canonical on-disk sweep report format.
//!
//! The format is JSON, but with a *fixed physical layout* so that merges
//! can operate on raw bytes: the manifest, counters, and `jobs_checksum`
//! each occupy their own line, and every job row is one compact JSON
//! object on its own line inside the `jobs` array. The merge verifier
//! never re-serializes rows — it splices the raw row text from the shard
//! files into the merged file — so a clean merge is byte-identical (from
//! `jobs_checksum` on) to the same sweep run unsharded, and duplicate
//! detection is plain byte equality.
//!
//! `jobs_checksum` is a content hash over the compact row texts; a
//! bit-flipped or truncated row fails the checksum and the whole file is
//! treated as corrupt (typed finding + quarantine), never silently
//! merged.

use std::path::Path;

use gpumech_core::CpiStack;
use gpumech_exec::cache::payload_checksum;
use serde::{Deserialize, Serialize};

use crate::manifest::{fingerprint_hex, parse_fingerprint, SweepManifest};

/// One job's outcome in a sweep report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRow {
    /// Job label (`kernel[ @ axis=value]`).
    pub label: String,
    /// The job fingerprint (journal/shard key), hex-encoded.
    pub fingerprint: String,
    /// Predicted CPI, absent when the job failed.
    pub cpi: Option<f64>,
    /// Predicted IPC, absent when the job failed.
    pub ipc: Option<f64>,
    /// The per-category CPI stack, absent when the job failed.
    pub stack: Option<CpiStack>,
    /// Cycle-level oracle CPI (`--oracle` runs), absent otherwise.
    pub oracle_cpi: Option<f64>,
    /// The job's typed error, absent when it succeeded.
    pub error: Option<String>,
    /// Non-fatal warnings. Environment-dependent `cache: `-prefixed
    /// warnings are stripped before writing, so rows are byte-stable
    /// across shards, resumes, and machines.
    pub warnings: Vec<String>,
}

/// One aggregated counter carried in a sweep report (outside the
/// byte-compared region: counters legitimately differ between a sharded
/// and an unsharded run of the same sweep).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Full metric name (`exec.cache.hits`, `shard.partition.owned`, ...).
    pub name: String,
    /// Aggregated total.
    pub total: u64,
}

/// A sweep report: the manifest plus one row per owned job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Provenance and coverage stamp.
    pub manifest: SweepManifest,
    /// Worker threads the producing batch ran with.
    pub workers: u64,
    /// Distinct cached analyses after the run.
    pub cache_entries: u64,
    /// Aggregated `exec.*` / `shard.*` counters from the producing run.
    pub counters: Vec<CounterEntry>,
    /// Content hash over the compact job-row texts, hex-encoded.
    pub jobs_checksum: String,
    /// One row per job this file covers, in enumeration order.
    pub jobs: Vec<JobRow>,
}

/// Checksum over compact row texts: what `jobs_checksum` stores.
#[must_use]
pub fn rows_checksum(raw_rows: &[String]) -> String {
    fingerprint_hex(payload_checksum(raw_rows.join("\n").as_bytes()))
}

/// Renders the canonical file text from pre-serialized parts. Both the
/// batch writer and the merge writer go through here, which is what makes
/// their outputs byte-comparable.
#[must_use]
pub fn render_parts(
    manifest_json: &str,
    workers: u64,
    cache_entries: u64,
    counters_json: &str,
    raw_rows: &[String],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    // Run-dependent fields (worker count, cache size, counters) come
    // first; everything from the manifest on is sweep content, so the
    // byte-compared tail of the file — from the first `"jobs"` key, which
    // lives inside the compact manifest — is identical across resumes,
    // shards, and the unsharded reference run.
    out.push_str(&format!("  \"workers\": {workers},\n"));
    out.push_str(&format!("  \"cache_entries\": {cache_entries},\n"));
    out.push_str(&format!("  \"counters\": {counters_json},\n"));
    out.push_str(&format!("  \"manifest\": {manifest_json},\n"));
    out.push_str(&format!("  \"jobs_checksum\": \"{}\",\n", rows_checksum(raw_rows)));
    out.push_str("  \"jobs\": [\n");
    for (i, row) in raw_rows.iter().enumerate() {
        out.push_str("    ");
        out.push_str(row);
        out.push_str(if i + 1 < raw_rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

impl SweepReport {
    /// Renders the canonical file text (recomputing `jobs_checksum` from
    /// the rows, so the stored field can never disagree with the content).
    ///
    /// # Errors
    ///
    /// Serialization failure (unreachable for reports built by this
    /// workspace).
    pub fn render(&self) -> Result<String, String> {
        let manifest = serde_json::to_string(&self.manifest).map_err(|e| e.to_string())?;
        let counters = serde_json::to_string(&self.counters).map_err(|e| e.to_string())?;
        let mut rows = Vec::with_capacity(self.jobs.len());
        for row in &self.jobs {
            rows.push(serde_json::to_string(row).map_err(|e| e.to_string())?);
        }
        Ok(render_parts(&manifest, self.workers, self.cache_entries, &counters, &rows))
    }

    /// Renders and writes atomically (tmp + rename), so a killed writer
    /// leaves either the old file or the new one — never a torn mix.
    ///
    /// # Errors
    ///
    /// Serialization or I/O failure, rendered.
    pub fn write(&self, path: &Path) -> Result<(), String> {
        let text = self.render()?;
        write_atomic(path, &text)
    }
}

/// Atomic file write: tmp in the same directory, then rename.
///
/// # Errors
///
/// Rendered I/O failure.
pub fn write_atomic(path: &Path, text: &str) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        }
    }
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, text).map_err(|e| format!("{}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("{}: {e}", path.display()))
}

/// A parsed shard file: the structured report plus the raw row texts as
/// they appear on disk (the merge's unit of byte comparison).
#[derive(Debug, Clone)]
pub struct ShardFile {
    /// The parsed report.
    pub report: SweepReport,
    /// Compact row text per job, exactly as stored (whitespace-trimmed).
    pub raw_rows: Vec<String>,
    /// Decoded fingerprint per row, parallel to `raw_rows`.
    pub row_fps: Vec<u64>,
}

/// Loads and fully verifies one shard file: JSON parse, manifest
/// consistency, raw-row extraction, per-row fingerprint decode, row/field
/// agreement, and the `jobs_checksum` content check.
///
/// # Errors
///
/// A one-line description of the first defect — the caller turns it into
/// a typed corrupt-file finding.
pub fn load_shard_file(path: &Path) -> Result<ShardFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read: {e}"))?;
    let report: SweepReport =
        serde_json::from_str(&text).map_err(|e| format!("parse: {e}"))?;
    report.manifest.validate().map_err(|m| format!("manifest: {m}"))?;
    let raw_rows = extract_raw_rows(&text)?;
    if raw_rows.len() != report.jobs.len() {
        return Err(format!(
            "jobs array extracted {} raw row(s) but parsed {}",
            raw_rows.len(),
            report.jobs.len()
        ));
    }
    let actual = rows_checksum(&raw_rows);
    if actual != report.jobs_checksum {
        return Err(format!(
            "jobs_checksum mismatch: stored {} computed {actual} (bit rot or torn write)",
            report.jobs_checksum
        ));
    }
    let mut row_fps = Vec::with_capacity(report.jobs.len());
    for (i, row) in report.jobs.iter().enumerate() {
        let fp = parse_fingerprint(&row.fingerprint)
            .ok_or_else(|| format!("row {i} fingerprint malformed: {:?}", row.fingerprint))?;
        row_fps.push(fp);
    }
    Ok(ShardFile { report, raw_rows, row_fps })
}

/// Extracts the compact row texts from the `jobs` array of a canonical
/// file, string- and escape-aware, without re-serializing anything.
fn extract_raw_rows(text: &str) -> Result<Vec<String>, String> {
    let key = "\"jobs\": [";
    let start = text.find(key).ok_or_else(|| "no \"jobs\" array".to_string())?;
    let body = &text[start + key.len()..];
    let mut rows = Vec::new();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut current = String::new();
    for c in body.chars() {
        if in_string {
            current.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                current.push(c);
            }
            '{' | '[' => {
                depth += 1;
                current.push(c);
            }
            '}' => {
                depth = depth.checked_sub(1).ok_or_else(|| "unbalanced jobs array".to_string())?;
                current.push(c);
            }
            ']' => {
                if depth == 0 {
                    // End of the jobs array.
                    let last = current.trim();
                    if !last.is_empty() {
                        rows.push(last.to_string());
                    }
                    return Ok(rows);
                }
                depth -= 1;
                current.push(c);
            }
            ',' if depth == 0 => {
                let row = current.trim();
                if row.is_empty() {
                    return Err("empty element in jobs array".to_string());
                }
                rows.push(row.to_string());
                current.clear();
            }
            other => current.push(other),
        }
    }
    Err("jobs array never closes (torn tail)".to_string())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::manifest::SweepManifest;
    use crate::partition::ShardSpec;

    fn sample() -> SweepReport {
        let fps = [0x10u64, 0x20, 0x30];
        SweepReport {
            manifest: SweepManifest::new(ShardSpec::single(), "abc", 7, &fps),
            workers: 2,
            cache_entries: 1,
            counters: vec![CounterEntry { name: "exec.cache.hits".to_string(), total: 3 }],
            jobs_checksum: String::new(), // recomputed on render
            jobs: fps
                .iter()
                .map(|&fp| JobRow {
                    label: format!("job-{fp:x}"),
                    fingerprint: fingerprint_hex(fp),
                    cpi: Some(2.5),
                    ipc: Some(0.4),
                    stack: Some(CpiStack::default()),
                    oracle_cpi: None,
                    error: None,
                    warnings: vec!["numerics, {tricky\"} chars".to_string()],
                })
                .collect(),
        }
    }

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("gpumech-shard-report-{}-{tag}", std::process::id()))
    }

    #[test]
    fn render_load_round_trips_with_raw_rows() {
        let report = sample();
        let path = tmp("roundtrip.json");
        report.write(&path).unwrap();
        let loaded = load_shard_file(&path).unwrap();
        assert_eq!(loaded.report.jobs, report.jobs);
        assert_eq!(loaded.report.manifest, report.manifest);
        assert_eq!(loaded.raw_rows.len(), 3);
        assert_eq!(loaded.row_fps, vec![0x10, 0x20, 0x30]);
        // Raw rows are exactly the compact serialization (including rows
        // with braces and quotes inside string values).
        for (raw, row) in loaded.raw_rows.iter().zip(&report.jobs) {
            assert_eq!(raw, &serde_json::to_string(row).unwrap());
        }
        // The stored checksum matches the recomputed one by construction.
        assert_eq!(loaded.report.jobs_checksum, rows_checksum(&loaded.raw_rows));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_jobs_render_and_load() {
        let mut report = sample();
        report.jobs.clear();
        report.manifest = SweepManifest::new(ShardSpec::single(), "abc", 7, &[]);
        let path = tmp("empty.json");
        report.write(&path).unwrap();
        let loaded = load_shard_file(&path).unwrap();
        assert!(loaded.raw_rows.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_is_detected_not_tolerated() {
        let report = sample();
        let path = tmp("corrupt.json");
        let text = report.render().unwrap();

        // A flipped byte inside a row value: checksum mismatch.
        let flipped = text.replacen("2.5", "2.6", 1);
        std::fs::write(&path, &flipped).unwrap();
        let err = load_shard_file(&path).unwrap_err();
        assert!(err.contains("jobs_checksum mismatch"), "{err}");

        // A torn tail: the file ends mid-row.
        let torn = &text[..text.len() - 30];
        std::fs::write(&path, torn).unwrap();
        let err = load_shard_file(&path).unwrap_err();
        assert!(err.contains("parse"), "{err}");

        // A truncated manifest job list: declared total disagrees.
        let mut bad = report.clone();
        bad.manifest.total_jobs = 7;
        std::fs::write(&path, bad.render().unwrap()).unwrap();
        let err = load_shard_file(&path).unwrap_err();
        assert!(err.contains("manifest"), "{err}");

        std::fs::remove_file(&path).unwrap();
    }
}
