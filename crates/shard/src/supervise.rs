//! The local multi-process shard supervisor.
//!
//! `supervise` spawns one `gpumech batch --shard i/N` child per shard,
//! watches each child's journal as a heartbeat, and keeps the sweep alive
//! unattended:
//!
//! * a child that **crashes** (non-zero exit, SIGKILL, panic) or exits
//!   without its result file is restarted with `--resume` after a
//!   deterministic jittered backoff ([`RetryPolicy`]) — the journal
//!   replays finished jobs, so no work is repeated;
//! * a child whose journal **stalls** beyond the heartbeat window is
//!   SIGKILLed and treated as a crash;
//! * each shard has a **restart budget**; exhausting it aborts the sweep
//!   with a typed error rather than flapping forever;
//! * an optional **whole-sweep deadline** bounds the wall clock;
//! * SIGTERM/SIGINT (or a [`CancelToken`]) triggers a **clean drain**:
//!   children get SIGTERM, a grace window, then SIGKILL — journals stay
//!   valid for a later `--resume`.
//!
//! Chaos hooks ([`ChaosKill`]) let the fault harness and CI murder a
//! specific shard mid-run to prove recovery end to end.

use std::fmt::Write as _;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use gpumech_exec::resilience::RetryPolicy;
use gpumech_obs::CancelToken;

use crate::ShardError;

/// SIGTERM/SIGINT plumbing without the `libc` crate: an async-signal-safe
/// handler that stores into a process-global flag the supervisor polls.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static FIRED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        // An atomic store is async-signal-safe; everything else happens
        // on the supervisor loop when it next polls `fired`.
        FIRED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub(super) fn install() {
        // SAFETY: `on_signal` only performs an atomic store, and both
        // SIGINT (2) and SIGTERM (15) are catchable signals.
        unsafe {
            signal(2, on_signal);
            signal(15, on_signal);
        }
    }

    pub(super) fn fired() -> bool {
        FIRED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod signals {
    pub(super) fn install() {}

    pub(super) fn fired() -> bool {
        false
    }
}

/// Sends `sig` to `pid`. Returns `false` on non-Unix platforms or if the
/// signal could not be delivered.
fn send_signal(pid: u32, sig: i32) -> bool {
    #[cfg(unix)]
    {
        extern "C" {
            fn kill(pid: i32, sig: i32) -> i32;
        }
        let Ok(pid) = i32::try_from(pid) else {
            return false;
        };
        // SAFETY: plain syscall wrapper; no memory is touched.
        unsafe { kill(pid, sig) == 0 }
    }
    #[cfg(not(unix))]
    {
        let _ = (pid, sig);
        false
    }
}

/// A chaos injection: SIGKILL shard `shard` once its journal reaches
/// `after_journal_lines` lines. Fires at most once per supervise run —
/// the restarted child resumes and must complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosKill {
    /// The shard to kill.
    pub shard: u32,
    /// Journal line count that triggers the kill (0 = as soon as the
    /// child is observed running).
    pub after_journal_lines: u64,
}

impl std::str::FromStr for ChaosKill {
    type Err = ShardError;

    /// Parses `i@lines` (e.g. `1@5`: kill shard 1 after 5 journal lines).
    fn from_str(s: &str) -> Result<Self, ShardError> {
        let bad = || ShardError::BadSpec(format!("{s:?} (expected shard@lines, e.g. 1@5)"));
        let (shard, lines) = s.split_once('@').ok_or_else(bad)?;
        Ok(Self {
            shard: shard.parse().map_err(|_| bad())?,
            after_journal_lines: lines.parse().map_err(|_| bad())?,
        })
    }
}

/// Supervisor configuration.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// The shard worker binary (normally the `gpumech` binary itself).
    pub program: PathBuf,
    /// Arguments shared by every shard child (`batch`, sweep flags, ...).
    /// The supervisor appends `--shard i/N --journal <j> --json <r>
    /// --resume` per child.
    pub shared_args: Vec<String>,
    /// Directory for per-shard journals, result files, and child logs.
    pub dir: PathBuf,
    /// Number of shards to run.
    pub shards: u32,
    /// Restarts allowed per shard beyond its first spawn.
    pub restart_budget: u32,
    /// A child whose journal shows no growth for this long is considered
    /// hung and SIGKILLed.
    pub heartbeat_ms: u64,
    /// Supervisor poll interval.
    pub poll_ms: u64,
    /// Whole-sweep wall-clock bound; `None` = unbounded.
    pub deadline_ms: Option<u64>,
    /// Grace window between SIGTERM and SIGKILL during a drain.
    pub drain_ms: u64,
    /// Backoff schedule for restarts (keyed by shard index and attempt).
    pub backoff: RetryPolicy,
    /// Chaos injections (tests, CI, the fault harness).
    pub chaos_kills: Vec<ChaosKill>,
    /// Install SIGTERM/SIGINT handlers for clean drain. Leave off when
    /// embedding in a process that manages its own signals (tests).
    pub handle_signals: bool,
    /// Cooperative cancellation (an in-process drain trigger).
    pub cancel: Option<CancelToken>,
    /// Extra environment variables for every child.
    pub env: Vec<(String, String)>,
}

impl SupervisorConfig {
    /// A config with test/CLI-friendly defaults for `shards` children of
    /// `program` working under `dir`.
    #[must_use]
    pub fn new(program: PathBuf, dir: PathBuf, shards: u32) -> Self {
        Self {
            program,
            shared_args: Vec::new(),
            dir,
            shards: shards.max(1),
            restart_budget: 3,
            heartbeat_ms: 30_000,
            poll_ms: 25,
            deadline_ms: None,
            drain_ms: 2_000,
            backoff: RetryPolicy { base_delay_ns: 20_000_000, max_delay_ns: 500_000_000, seed: 0 },
            chaos_kills: Vec::new(),
            handle_signals: false,
            cancel: None,
            env: Vec::new(),
        }
    }

    /// The journal path for shard `i`.
    #[must_use]
    pub fn journal_path(&self, i: u32) -> PathBuf {
        self.dir.join(format!("shard-{i}.journal"))
    }

    /// The result-file path for shard `i`.
    #[must_use]
    pub fn result_path(&self, i: u32) -> PathBuf {
        self.dir.join(format!("shard-{i}.json"))
    }

    /// The captured stdout/stderr path for shard `i`.
    #[must_use]
    pub fn log_path(&self, i: u32) -> PathBuf {
        self.dir.join(format!("shard-{i}.log"))
    }
}

/// Per-shard outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStatus {
    /// The shard index.
    pub shard: u32,
    /// Total times the child was spawned.
    pub spawns: u32,
    /// Restarts (`spawns - 1` once running).
    pub restarts: u32,
    /// Whether the shard completed with a result file.
    pub done: bool,
}

/// What the supervisor did.
#[derive(Debug, Clone)]
pub struct SupervisorSummary {
    /// Per-shard outcomes, indexed by shard.
    pub shards: Vec<ShardStatus>,
    /// `true` when the run ended in a clean signal/cancel drain instead
    /// of completion.
    pub drained: bool,
    /// Wall-clock duration of the supervise run, in milliseconds.
    pub wall_ms: u64,
    /// Result-file paths for completed shards, in shard order — the
    /// merge input.
    pub result_paths: Vec<PathBuf>,
}

impl SupervisorSummary {
    /// One human line per shard plus the verdict, for logs.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.shards {
            let state = if s.done { "done" } else { "incomplete" };
            let _ = writeln!(
                out,
                "# shard {}: {state} after {} spawn(s) ({} restart(s))",
                s.shard, s.spawns, s.restarts
            );
        }
        let verdict = if self.drained { "drained" } else { "completed" };
        let _ = writeln!(out, "# supervisor: {verdict} in {} ms", self.wall_ms);
        out
    }
}

struct ShardState {
    shard: u32,
    child: Option<Child>,
    spawns: u32,
    done: bool,
    restart_due: Option<Instant>,
    last_progress: Instant,
    last_lines: u64,
}

/// Counts newline-terminated lines in the journal (a torn tail without a
/// trailing newline is in-progress work, not a heartbeat).
fn journal_lines(path: &Path) -> u64 {
    std::fs::read(path)
        .map(|bytes| bytes.iter().filter(|&&b| b == b'\n').count() as u64)
        .unwrap_or(0)
}

/// Runs the sweep under supervision. Blocks until every shard completes,
/// a drain is requested, or a budget/deadline aborts the sweep.
///
/// # Errors
///
/// [`ShardError::Spawn`] if a child cannot be started,
/// [`ShardError::RestartBudgetExhausted`] when one shard keeps dying,
/// [`ShardError::DeadlineExceeded`] when the whole-sweep bound fires, and
/// [`ShardError::Io`] for workspace failures. On every error path all
/// children are killed and reaped before returning.
pub fn supervise(cfg: &SupervisorConfig) -> Result<SupervisorSummary, ShardError> {
    let _span = gpumech_obs::span!("shard.supervisor.run", shards = cfg.shards);
    if cfg.handle_signals {
        signals::install();
    }
    std::fs::create_dir_all(&cfg.dir).map_err(|e| ShardError::Io {
        path: cfg.dir.display().to_string(),
        msg: e.to_string(),
    })?;

    let start = Instant::now();
    let deadline = cfg.deadline_ms.map(|ms| start + Duration::from_millis(ms));
    let mut chaos_fired = vec![false; cfg.chaos_kills.len()];
    let mut shards: Vec<ShardState> = (0..cfg.shards)
        .map(|shard| ShardState {
            shard,
            child: None,
            spawns: 0,
            done: false,
            restart_due: None,
            last_progress: start,
            last_lines: 0,
        })
        .collect();

    let result = run_loop(cfg, &mut shards, deadline, &mut chaos_fired);
    // Whatever happened, leave no children behind.
    for s in &mut shards {
        if let Some(child) = &mut s.child {
            let _ = child.kill();
            let _ = child.wait();
        }
        s.child = None;
    }
    let drained = matches!(result, Ok(true));
    result?;

    let statuses: Vec<ShardStatus> = shards
        .iter()
        .map(|s| ShardStatus {
            shard: s.shard,
            spawns: s.spawns,
            restarts: s.spawns.saturating_sub(1),
            done: s.done,
        })
        .collect();
    let result_paths = statuses
        .iter()
        .filter(|s| s.done)
        .map(|s| cfg.result_path(s.shard))
        .collect();
    if drained {
        gpumech_obs::counter!("shard.supervisor.drained");
    }
    #[allow(clippy::cast_possible_truncation)]
    let wall_ms = start.elapsed().as_millis() as u64;
    Ok(SupervisorSummary { shards: statuses, drained, wall_ms, result_paths })
}

/// The supervision loop. `Ok(true)` = drained, `Ok(false)` = completed.
fn run_loop(
    cfg: &SupervisorConfig,
    shards: &mut [ShardState],
    deadline: Option<Instant>,
    chaos_fired: &mut [bool],
) -> Result<bool, ShardError> {
    loop {
        let now = Instant::now();
        if shards.iter().all(|s| s.done) {
            return Ok(false);
        }
        if let Some(d) = deadline {
            if now >= d {
                kill_all(shards);
                return Err(ShardError::DeadlineExceeded {
                    ms: cfg.deadline_ms.unwrap_or(0),
                });
            }
        }
        if signals::fired() || cfg.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            drain(cfg, shards);
            return Ok(true);
        }

        // Decide fatal errors inside the per-shard pass, act on them
        // after it (kill_all needs the whole slice).
        let mut fatal: Option<ShardError> = None;
        for s in shards.iter_mut() {
            if s.done {
                continue;
            }
            match &mut s.child {
                None => {
                    if s.restart_due.is_none_or(|due| now >= due) {
                        if s.spawns > cfg.restart_budget {
                            fatal = Some(ShardError::RestartBudgetExhausted {
                                shard: s.shard,
                                spawns: s.spawns,
                            });
                            break;
                        }
                        if let Err(e) = spawn_shard(cfg, s) {
                            fatal = Some(e);
                            break;
                        }
                    }
                }
                Some(child) => match child.try_wait() {
                    Err(e) => {
                        fatal = Some(ShardError::Spawn { shard: s.shard, msg: e.to_string() });
                        break;
                    }
                    Ok(Some(status)) => {
                        s.child = None;
                        if status.success() && cfg.result_path(s.shard).exists() {
                            s.done = true;
                        } else {
                            // Crashed (or exited without a result file):
                            // schedule a --resume restart after backoff.
                            let attempt = s.spawns.saturating_sub(1);
                            let delay =
                                cfg.backoff.delay_ns(u64::from(s.shard), attempt) / 1_000_000;
                            s.restart_due = Some(now + Duration::from_millis(delay.max(1)));
                            gpumech_obs::counter!("shard.supervisor.crashes");
                        }
                    }
                    Ok(None) => {
                        let lines = journal_lines(&cfg.journal_path(s.shard));
                        if lines > s.last_lines {
                            s.last_lines = lines;
                            s.last_progress = now;
                        }
                        for (i, kill) in cfg.chaos_kills.iter().enumerate() {
                            if !chaos_fired[i]
                                && kill.shard == s.shard
                                && lines >= kill.after_journal_lines
                            {
                                chaos_fired[i] = true;
                                gpumech_obs::counter!("shard.supervisor.chaos_kills");
                                let _ = child.kill();
                            }
                        }
                        if now.duration_since(s.last_progress)
                            >= Duration::from_millis(cfg.heartbeat_ms.max(1))
                        {
                            // Hung: no journal growth inside the
                            // heartbeat window. Kill; the exit is picked
                            // up as a crash on the next poll.
                            gpumech_obs::counter!("shard.supervisor.stalled");
                            let _ = child.kill();
                            s.last_progress = now;
                        }
                    }
                },
            }
        }
        if let Some(e) = fatal {
            kill_all(shards);
            return Err(e);
        }

        // Re-check for completion before sleeping so a finished sweep
        // returns without one extra poll of latency.
        if shards.iter().all(|s| s.done) {
            return Ok(false);
        }
        std::thread::sleep(Duration::from_millis(cfg.poll_ms.max(1)));
    }
}

/// Spawns (or respawns, with `--resume` journal replay) one shard child.
fn spawn_shard(cfg: &SupervisorConfig, s: &mut ShardState) -> Result<(), ShardError> {
    let spec = format!("{}/{}", s.shard, cfg.shards);
    let journal = cfg.journal_path(s.shard);
    let result = cfg.result_path(s.shard);
    let log = File::create(cfg.log_path(s.shard)).map_err(|e| ShardError::Io {
        path: cfg.log_path(s.shard).display().to_string(),
        msg: e.to_string(),
    })?;
    let log_err = log.try_clone().map_err(|e| ShardError::Io {
        path: cfg.log_path(s.shard).display().to_string(),
        msg: e.to_string(),
    })?;
    let mut cmd = Command::new(&cfg.program);
    cmd.args(&cfg.shared_args)
        .arg("--shard")
        .arg(&spec)
        .arg("--journal")
        .arg(&journal)
        .arg("--json")
        .arg(&result)
        .arg("--resume")
        .stdin(Stdio::null())
        .stdout(Stdio::from(log))
        .stderr(Stdio::from(log_err));
    for (k, v) in &cfg.env {
        cmd.env(k, v);
    }
    let child = cmd.spawn().map_err(|e| ShardError::Spawn {
        shard: s.shard,
        msg: format!("{}: {e}", cfg.program.display()),
    })?;
    s.spawns += 1;
    s.restart_due = None;
    s.last_progress = Instant::now();
    s.child = Some(child);
    gpumech_obs::counter!("shard.supervisor.spawned");
    if s.spawns > 1 {
        gpumech_obs::counter!("shard.supervisor.restarts");
    }
    Ok(())
}

/// SIGKILLs and reaps every live child (error paths).
fn kill_all(shards: &mut [ShardState]) {
    for s in shards {
        if let Some(child) = &mut s.child {
            let _ = child.kill();
            let _ = child.wait();
        }
        s.child = None;
    }
}

/// Clean drain: SIGTERM every child, wait out the grace window, then
/// SIGKILL stragglers. Journals stay valid for a later `--resume`.
fn drain(cfg: &SupervisorConfig, shards: &mut [ShardState]) {
    for s in shards.iter_mut() {
        if let Some(child) = &s.child {
            let _ = send_signal(child.id(), 15);
        }
    }
    let grace_end = Instant::now() + Duration::from_millis(cfg.drain_ms);
    loop {
        let mut live = false;
        for s in shards.iter_mut() {
            if let Some(child) = &mut s.child {
                match child.try_wait() {
                    Ok(Some(status)) => {
                        if status.success() && cfg.result_path(s.shard).exists() {
                            s.done = true;
                        }
                        s.child = None;
                    }
                    Ok(None) => live = true,
                    Err(_) => {
                        let _ = child.kill();
                        let _ = child.wait();
                        s.child = None;
                    }
                }
            }
        }
        if !live || Instant::now() >= grace_end {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    kill_all(shards);
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn chaos_spec_parses_and_rejects() {
        let k: ChaosKill = "1@5".parse().unwrap();
        assert_eq!(k, ChaosKill { shard: 1, after_journal_lines: 5 });
        let zero: ChaosKill = "0@0".parse().unwrap();
        assert_eq!(zero.after_journal_lines, 0);
        for bad in ["", "1", "@5", "1@", "a@b", "1@5@6"] {
            assert!(bad.parse::<ChaosKill>().is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn config_paths_are_per_shard() {
        let cfg = SupervisorConfig::new(PathBuf::from("gpumech"), PathBuf::from("/tmp/sweep"), 3);
        assert_eq!(cfg.journal_path(2), PathBuf::from("/tmp/sweep/shard-2.journal"));
        assert_eq!(cfg.result_path(0), PathBuf::from("/tmp/sweep/shard-0.json"));
        assert_eq!(cfg.log_path(1), PathBuf::from("/tmp/sweep/shard-1.log"));
    }

    #[test]
    fn journal_lines_counts_terminated_lines_only() {
        let dir = std::env::temp_dir().join(format!("gpumech-shard-jl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        assert_eq!(journal_lines(&path), 0, "missing journal is empty");
        std::fs::write(&path, "{\"a\":1}\n{\"b\":2}\n{\"torn").unwrap();
        assert_eq!(journal_lines(&path), 2, "torn tail is not a heartbeat line");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
