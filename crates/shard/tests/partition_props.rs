//! Property-style tests for the shard partitioner: for arbitrary shard
//! counts and job lists, the shards `0/N .. N-1/N` form an exact disjoint
//! cover of the job space, and ownership is stable under reordering of
//! the input list.
//!
//! Cases are fanned out from a seeded splitmix64 stream, so the "arbitrary"
//! inputs are reproducible — a failure names the case seed.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use gpumech_shard::{shard_of, sweep_fingerprint, ShardSpec};
use gpumech_trace::splitmix64;

/// A deterministic pseudo-random stream for case generation.
struct Stream(u64);

impl Stream {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(1);
        splitmix64(self.0)
    }

    fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
}

/// One generated case: a shard count and a job-fingerprint list (with
/// occasional duplicates, which a sweep enumeration can legally contain).
fn case(seed: u64) -> (u32, Vec<u64>) {
    let mut s = Stream(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    #[allow(clippy::cast_possible_truncation)]
    let count = s.in_range(1, 64) as u32;
    let len = s.in_range(0, 300) as usize;
    let mut fps: Vec<u64> = (0..len).map(|_| s.next()).collect();
    // Sprinkle duplicates: roughly one in eight jobs repeats an earlier one.
    for i in 0..len {
        if !fps.is_empty() && s.next().is_multiple_of(8) {
            let j = (s.next() as usize) % fps.len();
            fps[i] = fps[j];
        }
    }
    (count, fps)
}

/// A seeded Fisher-Yates shuffle (no RNG crates in the tree).
fn shuffled(fps: &[u64], seed: u64) -> Vec<u64> {
    let mut out = fps.to_vec();
    let mut s = Stream(seed);
    for i in (1..out.len()).rev() {
        let j = (s.next() as usize) % (i + 1);
        out.swap(i, j);
    }
    out
}

#[test]
fn shards_form_an_exact_disjoint_cover() {
    for seed in 0..200u64 {
        let (count, fps) = case(seed);
        let shards: Vec<ShardSpec> =
            (0..count).map(|index| ShardSpec { index, count }).collect();
        let mut covered = 0usize;
        for &fp in &fps {
            let owners: Vec<u32> =
                shards.iter().filter(|s| s.owns(fp)).map(|s| s.index).collect();
            assert_eq!(
                owners.len(),
                1,
                "case {seed}: fp {fp:016x} owned by {owners:?} in a {count}-shard sweep"
            );
            assert_eq!(owners[0], shard_of(fp, count), "case {seed}: owns() and shard_of agree");
            covered += 1;
        }
        assert_eq!(covered, fps.len(), "case {seed}: every job is covered");
    }
}

#[test]
fn ownership_is_stable_under_input_reordering() {
    for seed in 0..100u64 {
        let (count, fps) = case(seed);
        let reordered = shuffled(&fps, seed ^ 0xabcd);
        for &fp in &reordered {
            // The fingerprint alone decides ownership: the same fp in a
            // different enumeration position lands on the same shard.
            assert_eq!(
                shard_of(fp, count),
                shard_of(fp, count),
                "pure function"
            );
        }
        // Stronger: the per-shard *sets* are identical regardless of order.
        for index in 0..count {
            let spec = ShardSpec { index, count };
            let mut a: Vec<u64> = fps.iter().copied().filter(|&fp| spec.owns(fp)).collect();
            let mut b: Vec<u64> =
                reordered.iter().copied().filter(|&fp| spec.owns(fp)).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "case {seed}: shard {index}/{count} set changed under reorder");
        }
    }
}

#[test]
fn single_shard_owns_everything() {
    for seed in 0..50u64 {
        let (_, fps) = case(seed);
        for &fp in &fps {
            assert!(ShardSpec::single().owns(fp));
            assert_eq!(shard_of(fp, 1), 0);
        }
    }
}

#[test]
fn partition_is_reasonably_balanced() {
    // Not a correctness requirement, but a badly skewed partition would
    // defeat the point of sharding; the avalanche should keep every shard
    // within a loose factor of its fair share on a large population.
    let fps: Vec<u64> = (0..20_000u64).map(splitmix64).collect();
    for count in [2u32, 3, 8] {
        let mut sizes = vec![0usize; count as usize];
        for &fp in &fps {
            sizes[shard_of(fp, count) as usize] += 1;
        }
        let fair = fps.len() / count as usize;
        for (i, &size) in sizes.iter().enumerate() {
            assert!(
                size > fair / 2 && size < fair * 2,
                "shard {i}/{count} got {size} of {} (fair {fair})",
                fps.len()
            );
        }
    }
}

#[test]
fn sweep_fingerprint_is_order_sensitive_but_count_free() {
    let (count, fps) = case(7);
    let base = sweep_fingerprint(99, &fps);
    // Sharding does not change sweep identity (no count in the hash):
    // recomputing from any shard's view of the full enumeration agrees.
    for index in 0..count.min(4) {
        let _ = ShardSpec { index, count };
        assert_eq!(sweep_fingerprint(99, &fps), base);
    }
    if fps.len() > 1 {
        let reordered = shuffled(&fps, 0x1234);
        if reordered != fps {
            assert_ne!(
                sweep_fingerprint(99, &reordered),
                base,
                "enumeration order is part of sweep identity"
            );
        }
    }
}
