//! Per-core (streaming multiprocessor) state for the timing oracle:
//! warp contexts with a scoreboard, the warp scheduler, the L1 cache with
//! its finite MSHR file, block-slot dispatch, and barriers.

use std::collections::HashMap;

use gpumech_isa::{InstKind, MemSpace, SchedulingPolicy, SimConfig};
use gpumech_mem::{coalesce, Access, Cache};
use gpumech_trace::KernelTrace;

use crate::dram::DramChannel;

/// Finite MSHR file with entry *reservation*: one entry per in-flight line.
/// Loads to an in-flight line merge ("pending hit") and complete when the
/// fill returns. A miss that finds the file full reserves the entry that
/// frees earliest and its request only starts service then — so a full
/// file serializes misses (request `j` effectively waits
/// `ceil(j / #MSHR)` fill rounds, the structure Equation 19 models) rather
/// than deadlocking warps whose divergent loads need more lines than the
/// file holds.
#[derive(Debug)]
struct MshrFile {
    capacity: usize,
    /// line address → fill completion cycle (for merges / pending hits).
    pending: HashMap<u64, u64>,
    /// Fill-completion time of every occupied (or future-reserved) entry.
    occupancy: std::collections::BinaryHeap<std::cmp::Reverse<u64>>,
}

impl MshrFile {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            pending: HashMap::new(),
            occupancy: std::collections::BinaryHeap::new(),
        }
    }

    fn reclaim(&mut self, now: u64) {
        self.pending.retain(|_, &mut done| done > now);
        while let Some(&std::cmp::Reverse(t)) = self.occupancy.peek() {
            if t <= now {
                self.occupancy.pop();
            } else {
                break;
            }
        }
    }

    /// Cycle at which a new miss can begin service: immediately if an entry
    /// is free, otherwise when the earliest in-flight fill completes (that
    /// entry is consumed — reserved for this request).
    fn entry_available(&mut self, now: u64) -> u64 {
        if self.occupancy.len() < self.capacity {
            return now;
        }
        match self.occupancy.pop() {
            Some(std::cmp::Reverse(t)) => t.max(now),
            None => now,
        }
    }

    /// Records a fill in flight for `line`, completing at `done`.
    fn insert(&mut self, line: u64, done: u64) {
        self.pending.insert(line, done);
        self.occupancy.push(std::cmp::Reverse(done));
    }
}

/// Execution state of one resident warp.
#[derive(Debug)]
struct WarpCtx {
    /// Index into `trace.warps`.
    trace_idx: usize,
    /// Next instruction (index into the warp trace) to issue.
    next: usize,
    /// Completion cycle of each issued instruction (scoreboard).
    done: Vec<u64>,
    /// Dispatch age for GTO's "oldest" rule (smaller = older).
    age: u64,
    /// Barrier generation this warp is waiting on, if any.
    waiting_gen: Option<u64>,
    finished: bool,
}

#[derive(Debug, Default)]
struct BarrierState {
    arrived: usize,
    gen: u64,
}

#[derive(Debug)]
struct BlockSlot {
    /// Unfinished warps of the resident block (0 = slot empty).
    live: usize,
}

/// Why a warp cannot issue this cycle (with a lower bound on when it might).
enum Stall {
    /// Warp can issue now.
    Ready,
    /// Blocked; may become ready at the given cycle (None = woken by
    /// another warp's issue, e.g. a barrier).
    Until(Option<u64>),
}

/// One streaming multiprocessor.
pub(crate) struct Core<'t> {
    trace: &'t KernelTrace,
    cfg: &'t SimConfig,
    l1: Cache,
    mshr: MshrFile,
    /// Flat warp slots: block slot `s` owns `[s*wpb, (s+1)*wpb)`.
    warps: Vec<Option<WarpCtx>>,
    slots: Vec<BlockSlot>,
    barriers: Vec<BarrierState>,
    wpb: usize,
    /// Grid block ids assigned to this core, dispatched in order.
    my_blocks: Vec<usize>,
    next_block: usize,
    rr_ptr: usize,
    gto_current: Option<usize>,
    age_counter: u64,
    /// Cycle the special-function unit next accepts a warp instruction.
    sfu_free_at: u64,
    /// Warp-instructions issued by this core.
    pub issued: u64,
    /// Optional per-instruction issue-cycle log, indexed like
    /// `trace.warps` (grid-global): filled only when requested.
    pub issue_log: Option<Vec<Vec<u64>>>,
}

impl<'t> Core<'t> {
    pub(crate) fn new(trace: &'t KernelTrace, cfg: &'t SimConfig, my_blocks: Vec<usize>) -> Self {
        let wpb = trace.launch.warps_per_block();
        let bpc = trace.launch.blocks_per_core(cfg.max_warps_per_core);
        let mut core = Self {
            trace,
            cfg,
            l1: Cache::new(&cfg.l1),
            mshr: MshrFile::new(cfg.num_mshrs),
            warps: (0..bpc * wpb).map(|_| None).collect(),
            slots: (0..bpc).map(|_| BlockSlot { live: 0 }).collect(),
            barriers: (0..bpc).map(|_| BarrierState::default()).collect(),
            wpb,
            my_blocks,
            next_block: 0,
            rr_ptr: 0,
            gto_current: None,
            age_counter: 0,
            sfu_free_at: 0,
            issued: 0,
            issue_log: None,
        };
        for s in 0..bpc {
            core.refill_slot(s);
        }
        core
    }

    /// `true` once every assigned block has been dispatched and finished.
    pub(crate) fn done(&self) -> bool {
        self.next_block >= self.my_blocks.len() && self.slots.iter().all(|s| s.live == 0)
    }

    fn refill_slot(&mut self, slot: usize) {
        if self.next_block >= self.my_blocks.len() {
            return;
        }
        let block = self.my_blocks[self.next_block];
        self.next_block += 1;
        self.barriers[slot] = BarrierState::default();
        let mut live = 0;
        for w in 0..self.wpb {
            let trace_idx = block * self.wpb + w;
            let len = self.trace.warps[trace_idx].insts.len();
            self.warps[slot * self.wpb + w] = Some(WarpCtx {
                trace_idx,
                next: 0,
                done: vec![0; len],
                age: self.age_counter,
                waiting_gen: None,
                finished: len == 0,
            });
            self.age_counter += 1;
            if len > 0 {
                live += 1;
            }
        }
        self.slots[slot].live = live;
    }

    /// Classifies warp `idx`'s readiness at `now`. Does not mutate caches.
    fn readiness(&self, idx: usize, now: u64, dram: &mut DramChannel) -> Stall {
        let Some(w) = &self.warps[idx] else { return Stall::Until(None) };
        if w.finished {
            return Stall::Until(None);
        }
        if let Some(gen) = w.waiting_gen {
            if self.barriers[idx / self.wpb].gen == gen {
                return Stall::Until(None);
            }
        }
        let inst = &self.trace.warps[w.trace_idx].insts[w.next];
        // Equation 4 convention: a consumer issues no earlier than the
        // producer's done cycle + 1.
        let ready_at = inst.deps.iter().map(|&d| w.done[d as usize] + 1).max().unwrap_or(0);
        if ready_at > now {
            return Stall::Until(Some(ready_at));
        }
        // Bounded write queue: a store cannot issue while the DRAM write
        // backlog is above the limit (memory-pipeline backpressure).
        if inst.kind == InstKind::Store(MemSpace::Global) {
            let admit = dram.write_admission_time(now);
            if admit > now {
                return Stall::Until(Some(admit));
            }
        }
        // Structural hazard: the SFU accepts one warp instruction per
        // initiation interval.
        if inst.kind == InstKind::Sfu && self.sfu_free_at > now {
            return Stall::Until(Some(self.sfu_free_at));
        }
        Stall::Ready
    }

    fn pick_warp(&mut self, now: u64, dram: &mut DramChannel, policy: SchedulingPolicy) -> Option<usize> {
        let n = self.warps.len();
        match policy {
            SchedulingPolicy::RoundRobin => {
                for k in 0..n {
                    let i = (self.rr_ptr + k) % n;
                    if matches!(self.readiness(i, now, dram), Stall::Ready) {
                        self.rr_ptr = (i + 1) % n;
                        return Some(i);
                    }
                }
                None
            }
            SchedulingPolicy::GreedyThenOldest => {
                if let Some(cur) = self.gto_current {
                    if matches!(self.readiness(cur, now, dram), Stall::Ready) {
                        return Some(cur);
                    }
                }
                let oldest = (0..n)
                    .filter(|&i| matches!(self.readiness(i, now, dram), Stall::Ready))
                    .min_by_key(|&i| self.warps[i].as_ref().map_or(u64::MAX, |w| w.age));
                self.gto_current = oldest;
                oldest
            }
        }
    }

    /// Attempts to issue one warp-instruction; returns `true` on issue.
    pub(crate) fn try_issue(
        &mut self,
        now: u64,
        l2: &mut Cache,
        dram: &mut DramChannel,
        policy: SchedulingPolicy,
    ) -> bool {
        self.mshr.reclaim(now);
        let Some(idx) = self.pick_warp(now, dram, policy) else { return false };
        self.issue(idx, now, l2, dram);
        true
    }

    fn issue(&mut self, idx: usize, now: u64, l2: &mut Cache, dram: &mut DramChannel) {
        let slot = idx / self.wpb;
        // `pick_warp` only returns indices of occupied slots.
        let Some(w) = self.warps[idx].as_mut() else { return };
        let inst = &self.trace.warps[w.trace_idx].insts[w.next];
        let line_bytes = self.cfg.l1.line_bytes as u64;

        let done_cycle = match inst.kind {
            InstKind::Load(MemSpace::Global) => {
                let lines = coalesce(&inst.addrs, line_bytes);
                let mut done = now + self.cfg.l1.latency;
                for l in lines {
                    let line_done = if let Some(&fill) = self.mshr.pending.get(&l) {
                        fill // pending hit: merge with the in-flight fill
                    } else if self.l1.probe(l) {
                        let _ = self.l1.access(l, true); // refresh LRU
                        now + self.cfg.l1.latency
                    } else {
                        let _ = self.l1.access(l, true); // allocate tags
                        // An MSHR entry gates when the miss starts service
                        // (a full file serializes misses in rounds of
                        // #MSHR — the structure Equation 19 models); the
                        // windowed DRAM channel makes the future arrival
                        // harmless to earlier traffic.
                        let start = self.mshr.entry_available(now);
                        let fill = if l2.access(l, true) == Access::Hit {
                            start + self.cfg.l2.latency
                        } else {
                            dram.request(now, start + self.cfg.l2.latency)
                        };
                        self.mshr.insert(l, fill);
                        fill
                    };
                    done = done.max(line_done);
                }
                done
            }
            InstKind::Store(MemSpace::Global) => {
                // Write-through, no-allocate: traffic only; retires at once.
                for l in coalesce(&inst.addrs, line_bytes) {
                    let _ = l2.access(l, false);
                    dram.request_write(now, now + self.cfg.l2.latency);
                }
                now + 1
            }
            InstKind::Sync => {
                let live = self.slots[slot].live;
                let bar = &mut self.barriers[slot];
                bar.arrived += 1;
                if bar.arrived >= live {
                    bar.arrived = 0;
                    bar.gen += 1; // release everyone
                } else {
                    w.waiting_gen = Some(bar.gen);
                }
                now + 1
            }
            InstKind::Sfu => {
                // Readiness guarantees the unit is free at issue; occupy it
                // for one initiation interval.
                self.sfu_free_at = now + self.cfg.sfu_initiation_interval();
                now + self.cfg.latencies.latency_of(InstKind::Sfu)
            }
            kind => now + self.cfg.latencies.latency_of(kind),
        };

        let Some(w) = self.warps[idx].as_mut() else { return };
        if let Some(log) = &mut self.issue_log {
            log[w.trace_idx].push(now);
        }
        if w.waiting_gen.is_some() {
            // Arrived at a barrier that has since been released?
            let bar_gen = self.barriers[slot].gen;
            if w.waiting_gen != Some(bar_gen) {
                w.waiting_gen = None;
            }
        }
        w.done[w.next] = done_cycle;
        w.next += 1;
        self.issued += 1;

        if w.next == self.trace.warps[w.trace_idx].insts.len() {
            w.finished = true;
            self.slots[slot].live -= 1;
            if self.gto_current == Some(idx) {
                self.gto_current = None;
            }
            // A finishing warp can complete a barrier it never reaches.
            let live = self.slots[slot].live;
            let bar = &mut self.barriers[slot];
            if live > 0 && bar.arrived >= live {
                bar.arrived = 0;
                bar.gen += 1;
            }
            if live == 0 {
                self.refill_slot(slot);
            }
        }
    }

    /// Earliest cycle after `now` at which some warp *may* become ready —
    /// the skip-ahead bound used when every core is idle.
    pub(crate) fn next_event_time(&self, now: u64, dram: &mut DramChannel) -> Option<u64> {
        (0..self.warps.len())
            .filter_map(|i| match self.readiness(i, now, dram) {
                Stall::Ready => Some(now + 1),
                Stall::Until(t) => t.filter(|&t| t > now),
            })
            .min()
    }
}
