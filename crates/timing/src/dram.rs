//! The shared, bandwidth-limited DRAM channel.
//!
//! All cores feed one channel. A request occupies the bus for the line's
//! transmission time `s = freq * L / B` (Equation 22's service time) and
//! then pays the fixed DRAM access latency. Under bursts the serialization
//! on the bus is what produces the queueing delays the model's M/D/1 stage
//! (Section IV-B2) approximates.
//!
//! Because the oracle computes completion times at issue, requests can be
//! *scheduled* with arrival times in the future (e.g. a miss waiting for an
//! MSHR entry). A scalar first-come-first-served `free_at` would let such a
//! future request delay every later-issued but earlier-arriving request, so
//! the channel books capacity in fixed time windows instead: each
//! [`WINDOW_CYCLES`]-cycle window holds `WINDOW_CYCLES / s` requests, and a
//! request starts in the first window at-or-after its arrival with spare
//! capacity. This is bandwidth-exact and insensitive to issue order.

use std::collections::BTreeMap;

use gpumech_isa::SimConfig;

/// Size of a capacity-booking window in cycles.
pub const WINDOW_CYCLES: u64 = 32;

/// Maximum outstanding write requests before the memory pipeline
/// back-pressures store issue — real memory controllers buffer a bounded
/// number of writes and stall the LSU beyond it, which is what throttles
/// write-flood kernels at the core instead of letting an unbounded queue
/// starve later reads.
pub const WRITE_QUEUE_LIMIT: usize = 128;

/// Bandwidth-limited DRAM channel with windowed capacity booking.
#[derive(Debug, Clone)]
pub struct DramChannel {
    service: f64,
    access_latency: u64,
    /// Window index → booked bus-service cycles.
    booked: BTreeMap<u64, f64>,
    requests: u64,
    busy_time: f64,
    /// Bus-service completion times of outstanding writes.
    write_finish: std::collections::BinaryHeap<std::cmp::Reverse<u64>>,
}

impl DramChannel {
    /// Builds the channel from the machine configuration.
    ///
    /// The service time is clamped to one booking window; a validated
    /// configuration ([`SimConfig::validate`] bounds
    /// `dram_service_cycles()` by `MAX_DRAM_SERVICE_CYCLES`) is never
    /// clamped, but the guard keeps `DramChannel::book`'s capacity search
    /// terminating even on unvalidated inputs.
    #[must_use]
    pub fn new(cfg: &SimConfig) -> Self {
        let service = cfg.dram_service_cycles();
        let service = if service.is_finite() && service > 0.0 {
            service.min(WINDOW_CYCLES as f64)
        } else {
            1.0
        };
        Self {
            service,
            access_latency: cfg.dram_latency,
            booked: BTreeMap::new(),
            requests: 0,
            busy_time: 0.0,
            write_finish: std::collections::BinaryHeap::new(),
        }
    }

    /// Books one line transfer arriving at `arrival` (issued at simulation
    /// time `now`); returns the cycle the bus finishes transmitting it (no
    /// access latency).
    ///
    /// Pruning is anchored to `now`, never to `arrival`: future bookings
    /// must not evict still-booked future windows, or their capacity would
    /// be handed out twice.
    fn book(&mut self, now: u64, arrival: u64) -> f64 {
        let cur = now / WINDOW_CYCLES;
        while let Some((&w, _)) = self.booked.first_key_value() {
            if w + 2 < cur {
                self.booked.pop_first();
            } else {
                break;
            }
        }
        let mut wi = arrival.max(now) / WINDOW_CYCLES;
        loop {
            let used = self.booked.entry(wi).or_insert(0.0);
            if *used + self.service <= WINDOW_CYCLES as f64 {
                let start = (arrival as f64).max(wi as f64 * WINDOW_CYCLES as f64 + *used);
                *used += self.service;
                self.requests += 1;
                self.busy_time += self.service;
                return start + self.service;
            }
            wi += 1;
        }
    }

    /// Enqueues one read request issued at `now`, arriving at the memory
    /// controller at `arrival`; returns the cycle its data is available
    /// (bus serialization + access latency).
    pub fn request(&mut self, now: u64, arrival: u64) -> u64 {
        let bus_done = self.book(now, arrival);
        (bus_done.ceil() as u64) + self.access_latency
    }

    /// Enqueues a write request: consumes bus capacity but the caller does
    /// not wait for completion (write-through stores are fire-and-forget).
    /// The write occupies a bounded queue slot until its bus service
    /// finishes.
    pub fn request_write(&mut self, now: u64, arrival: u64) {
        let bus_done = self.book(now, arrival);
        self.write_finish.push(std::cmp::Reverse(bus_done.ceil() as u64));
    }

    /// First cycle at which a store may issue without overflowing the
    /// bounded write queue (`now` itself when there is room). When the
    /// queue is full this returns the earliest outstanding write's
    /// completion — a lower bound; the scheduler re-checks on retry.
    pub fn write_admission_time(&mut self, now: u64) -> u64 {
        while let Some(&std::cmp::Reverse(t)) = self.write_finish.peek() {
            if t <= now {
                self.write_finish.pop();
            } else {
                break;
            }
        }
        if self.write_finish.len() < WRITE_QUEUE_LIMIT {
            now
        } else {
            self.write_finish.peek().map_or(now, |&std::cmp::Reverse(t)| t)
        }
    }

    /// Total requests served.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Aggregate bus-busy cycles (for utilization reporting).
    #[must_use]
    pub fn busy_time(&self) -> f64 {
        self.busy_time
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn channel(bw_gbps: f64) -> DramChannel {
        DramChannel::new(&SimConfig::default().with_dram_bandwidth(bw_gbps))
    }

    #[test]
    fn idle_channel_gives_pure_latency() {
        let mut d = channel(64.0); // s = 2 cycles
        let done = d.request(0, 100);
        assert_eq!(done, 100 + 2 + 300);
    }

    #[test]
    fn back_to_back_requests_serialize_on_the_bus() {
        let mut d = channel(64.0); // s = 2 cycles
        let d0 = d.request(0, 0);
        let d1 = d.request(0, 0);
        let d2 = d.request(0, 0);
        assert_eq!(d0, 302);
        assert_eq!(d1, 304, "second request waits one service time");
        assert_eq!(d2, 306);
    }

    #[test]
    fn spaced_requests_do_not_queue() {
        let mut d = channel(64.0);
        let d0 = d.request(0, 0);
        let d1 = d.request(0, 1000);
        assert_eq!(d1 - 1000, d0, "no queueing when the bus is idle");
    }

    #[test]
    fn out_of_order_arrivals_do_not_block_earlier_windows() {
        let mut d = channel(64.0); // s = 2
        // A far-future request must not consume near-term capacity.
        let far = d.request(0, 10_000);
        let near = d.request(0, 0);
        assert_eq!(near, 302, "near request unaffected by future booking");
        assert_eq!(far, 10_302);
    }

    #[test]
    fn window_capacity_spills_into_the_next_window() {
        let mut d = channel(64.0); // s = 2 → 16 requests per 32-cycle window
        let mut last = 0;
        for _ in 0..20 {
            last = d.request(0, 0);
        }
        // 16 fit in window [0,32), the rest start in window [32,64).
        assert!(last >= 300 + 32, "overflow requests spill: {last}");
        assert_eq!(d.requests(), 20);
    }

    #[test]
    fn higher_bandwidth_shrinks_serialization() {
        let mut slow = channel(64.0);
        let mut fast = channel(256.0);
        let n = 100;
        let slow_last = (0..n).map(|_| slow.request(0, 0)).last().unwrap();
        let fast_last = (0..n).map(|_| fast.request(0, 0)).last().unwrap();
        assert!(slow_last > fast_last, "64 GB/s must queue longer than 256 GB/s");
        assert_eq!(slow.requests(), n);
    }

    #[test]
    fn fractional_service_accumulates() {
        // Table I: s = 2/3 cycle. Three requests = 2 cycles of bus time.
        let mut d = channel(192.0);
        let _ = d.request(0, 0);
        let _ = d.request(0, 0);
        let d2 = d.request(0, 0);
        assert_eq!(d2, 2 + 300);
        assert!((d.busy_time() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn write_backpressure_admits_until_the_limit() {
        let mut d = channel(192.0);
        for _ in 0..WRITE_QUEUE_LIMIT {
            assert_eq!(d.write_admission_time(0), 0);
            d.request_write(0, 0);
        }
        // Queue full: admission defers to the earliest write completion.
        let admit = d.write_admission_time(0);
        assert!(admit > 0, "full write queue must defer stores");
        // After enough time passes, the queue drains and admits again.
        let later = admit + 1000;
        assert_eq!(d.write_admission_time(later), later);
    }

    #[test]
    fn sparse_writes_never_backpressure() {
        let mut d = channel(192.0);
        for t in (0..10_000).step_by(100) {
            assert_eq!(d.write_admission_time(t), t);
            d.request_write(t, t);
        }
    }
}
