//! Cycle-level GPU timing simulator — the validation oracle.
//!
//! The paper validates GPUMech against MacSim, a detailed cycle-level
//! CPU-GPU simulator. MacSim is not available here, so this crate is a
//! from-scratch cycle-level simulator implementing Table I's machine:
//!
//! * per-core in-order issue of 1 warp-instruction/cycle from a
//!   round-robin or greedy-then-oldest warp scheduler,
//! * a warp-level scoreboard (an instruction issues only when the producers
//!   of its source registers have completed),
//! * per-core L1 caches with a finite MSHR file (32 entries in Table I):
//!   a load that misses needs one MSHR per new line, merges with in-flight
//!   lines ("pending hits" complete when the fill returns), and stalls the
//!   warp when the file is full,
//! * a shared L2 (NoC latency folded into its 120-cycle access, as in the
//!   paper) and a bandwidth-limited DRAM channel: each line occupies the
//!   bus for `freq * L/B` cycles and then pays the 300-cycle access
//!   latency,
//! * write-through / no-write-allocate stores that bypass the MSHRs but
//!   consume DRAM bandwidth — the asymmetry behind the paper's
//!   `kmeans_invert_mapping` analysis,
//! * thread-block dispatch in waves: blocks are dealt round-robin to cores
//!   and a core refills a block slot as soon as that block's warps finish,
//! * `__syncthreads` barriers at block scope.
//!
//! It consumes the same [`gpumech_trace::KernelTrace`] the model consumes,
//! so model and oracle see identical instruction streams.
//!
//! # Example
//!
//! ```
//! use gpumech_isa::{SimConfig, SchedulingPolicy};
//! use gpumech_timing::simulate;
//! use gpumech_trace::workloads;
//!
//! let w = workloads::by_name("sdk_vectoradd").ok_or("missing workload")?.with_blocks(8);
//! let trace = w.trace()?;
//! let r = simulate(&trace, &SimConfig::default(), SchedulingPolicy::RoundRobin)?;
//! assert!(r.cycles > 0 && r.cpi() > 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod core;
pub mod dram;
pub mod sim;

pub use dram::DramChannel;
pub use sim::{simulate, simulate_with_issue_log, SimError, TimingResult};
