//! Top-level cycle loop of the timing oracle.

use std::fmt;

use gpumech_isa::{SchedulingPolicy, SimConfig};
use gpumech_mem::Cache;
use gpumech_trace::{KernelTrace, TraceError};
use serde::{Deserialize, Serialize};

use crate::core::Core;
use crate::dram::DramChannel;

/// Hard cap on simulated cycles: exceeded only by a deadlocked
/// configuration (reported as an error, never a hang).
pub const MAX_CYCLES: u64 = 2_000_000_000;

/// Error returned by [`simulate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The machine configuration failed validation.
    InvalidConfig(gpumech_isa::ConfigError),
    /// The trace violates a structural invariant
    /// ([`gpumech_trace::KernelTrace::validate`]).
    MalformedTrace(TraceError),
    /// The simulation exceeded [`MAX_CYCLES`].
    CycleLimit,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
            SimError::MalformedTrace(e) => write!(f, "malformed trace: {e}"),
            SimError::CycleLimit => write!(f, "simulation exceeded {MAX_CYCLES} cycles"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::InvalidConfig(e) => Some(e),
            SimError::MalformedTrace(e) => Some(e),
            SimError::CycleLimit => None,
        }
    }
}

/// Outcome of a timing simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingResult {
    /// Total cycles until the last block finished.
    pub cycles: u64,
    /// Warp-instructions issued across all cores.
    pub insts: u64,
    /// Cores in the simulated machine.
    pub num_cores: usize,
    /// Warp-instructions issued per core.
    pub per_core_insts: Vec<u64>,
    /// Total DRAM line requests served.
    pub dram_requests: u64,
    /// DRAM bus utilization (busy cycles / total cycles).
    pub dram_utilization: f64,
}

impl TimingResult {
    /// Core-level CPI: cycles per warp-instruction per core, i.e.
    /// `cycles / (insts / num_cores)` — the quantity the GPUMech model
    /// predicts and the paper's validation metric.
    #[must_use]
    pub fn cpi(&self) -> f64 {
        if self.insts == 0 {
            return 0.0;
        }
        self.cycles as f64 * self.num_cores as f64 / self.insts as f64
    }

    /// Core-level IPC (warp-instructions per cycle per core).
    #[must_use]
    pub fn ipc(&self) -> f64 {
        let cpi = self.cpi();
        if cpi == 0.0 { 0.0 } else { 1.0 / cpi }
    }
}

/// Runs the cycle-level simulation of `trace` on the machine `cfg` under
/// the given warp scheduling policy.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for inconsistent configurations,
/// [`SimError::MalformedTrace`] if the trace does not match its launch
/// geometry, and [`SimError::CycleLimit`] on deadlock.
pub fn simulate(
    trace: &KernelTrace,
    cfg: &SimConfig,
    policy: SchedulingPolicy,
) -> Result<TimingResult, SimError> {
    simulate_impl(trace, cfg, policy, false).map(|(r, _)| r)
}

/// [`simulate`] that additionally records every instruction's issue cycle,
/// indexed `[grid_warp][instruction]`. Used by validation tests (a lone
/// warp's issue times must reproduce the interval algorithm's Equation 4
/// schedule exactly) and by schedule-debugging tools; costs memory
/// proportional to the trace.
///
/// # Errors
///
/// Same as [`simulate`].
pub fn simulate_with_issue_log(
    trace: &KernelTrace,
    cfg: &SimConfig,
    policy: SchedulingPolicy,
) -> Result<(TimingResult, Vec<Vec<u64>>), SimError> {
    simulate_impl(trace, cfg, policy, true).map(|(r, log)| (r, log.unwrap_or_default()))
}

#[allow(clippy::type_complexity)]
fn simulate_impl(
    trace: &KernelTrace,
    cfg: &SimConfig,
    policy: SchedulingPolicy,
    with_log: bool,
) -> Result<(TimingResult, Option<Vec<Vec<u64>>>), SimError> {
    let _span = gpumech_obs::span!(
        "timing.oracle.simulate",
        name = trace.name.as_str(),
        warps = trace.warps.len(),
    );
    cfg.validate().map_err(SimError::InvalidConfig)?;
    trace.validate().map_err(SimError::MalformedTrace)?;

    // Deal blocks to cores (same rule as the functional cache simulator).
    let mut per_core_blocks: Vec<Vec<usize>> = vec![Vec::new(); cfg.num_cores];
    for b in 0..trace.launch.num_blocks {
        per_core_blocks[b % cfg.num_cores].push(b);
    }
    let mut cores: Vec<Core<'_>> =
        per_core_blocks.into_iter().map(|blocks| Core::new(trace, cfg, blocks)).collect();
    if with_log {
        for core in &mut cores {
            core.issue_log = Some(trace.warps.iter().map(|w| Vec::with_capacity(w.len())).collect());
        }
    }
    let mut l2 = Cache::new(&cfg.l2);
    let mut dram = DramChannel::new(cfg);

    let mut cycle: u64 = 0;
    loop {
        if cores.iter().all(Core::done) {
            break;
        }
        if cycle > MAX_CYCLES {
            return Err(SimError::CycleLimit);
        }
        let mut any = false;
        for core in &mut cores {
            if !core.done() && core.try_issue(cycle, &mut l2, &mut dram, policy) {
                any = true;
            }
        }
        if any {
            cycle += 1;
        } else {
            // Nothing issued anywhere: skip to the next possible event.
            let next = cores
                .iter()
                .filter(|c| !c.done())
                .filter_map(|c| c.next_event_time(cycle, &mut dram))
                .min();
            cycle = match next {
                Some(t) if t > cycle => t,
                _ => cycle + 1,
            };
        }
    }

    let per_core_insts: Vec<u64> = cores.iter().map(|c| c.issued).collect();
    let insts = per_core_insts.iter().sum();
    let log = if with_log {
        // Merge the per-core logs (each warp belongs to exactly one core).
        let mut merged: Vec<Vec<u64>> = trace.warps.iter().map(|_| Vec::new()).collect();
        for core in &mut cores {
            if let Some(core_log) = core.issue_log.take() {
                for (w, cycles) in core_log.into_iter().enumerate() {
                    if !cycles.is_empty() {
                        merged[w] = cycles;
                    }
                }
            }
        }
        Some(merged)
    } else {
        None
    };
    let result = TimingResult {
        cycles: cycle,
        insts,
        num_cores: cfg.num_cores,
        per_core_insts,
        dram_requests: dram.requests(),
        dram_utilization: if cycle == 0 { 0.0 } else { dram.busy_time() / cycle as f64 },
    };
    gpumech_obs::counter!("timing.oracle.cycles", result.cycles);
    gpumech_obs::counter!("timing.oracle.insts", result.insts);
    gpumech_obs::counter!("timing.oracle.dram_requests", result.dram_requests);
    gpumech_obs::gauge!("timing.oracle.dram_utilization", result.dram_utilization);
    gpumech_obs::gauge!("timing.oracle.cpi", result.cpi());
    Ok((result, log))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use gpumech_isa::{AddrPattern, KernelBuilder, Operand, ValueOp};
    use gpumech_trace::{trace_kernel, workloads, LaunchConfig};

    fn cfg() -> SimConfig {
        SimConfig::default()
    }

    fn rr() -> SchedulingPolicy {
        SchedulingPolicy::RoundRobin
    }

    #[test]
    fn single_warp_compute_chain_has_exact_latency() {
        // One warp, one core machine: issue + dependent FP chain.
        let mut b = KernelBuilder::new("chain");
        let a = b.fp_add(&[Operand::Imm(1)]);
        let c = b.fp_add(&[Operand::Reg(a), Operand::Imm(1)]);
        let _ = b.fp_add(&[Operand::Reg(c), Operand::Imm(1)]);
        let k = b.finish(vec![]);
        let t = trace_kernel(&k, LaunchConfig::new(32, 1)).unwrap();
        let mut one = cfg();
        one.num_cores = 1;
        let r = simulate(&t, &one, rr()).unwrap();
        // i0 at 0 (done 25), i1 at 26 (done 51), i2 at 52 (done 77),
        // exit (no deps) at 53 → sim ends the cycle after, 54.
        assert_eq!(r.insts, 4);
        assert_eq!(r.cycles, 54);
    }

    #[test]
    fn independent_instructions_issue_back_to_back() {
        let mut b = KernelBuilder::new("ilp");
        for i in 0..5 {
            let _ = b.fp_add(&[Operand::Imm(i)]);
        }
        let k = b.finish(vec![]);
        let t = trace_kernel(&k, LaunchConfig::new(32, 1)).unwrap();
        let mut one = cfg();
        one.num_cores = 1;
        let r = simulate(&t, &one, rr()).unwrap();
        assert_eq!(r.cycles, 6, "6 independent instructions, 1/cycle");
    }

    #[test]
    fn multithreading_hides_latency() {
        // Same dependent chain, 1 warp vs 8 warps on one core: more warps
        // must improve IPC (Figure 2's premise).
        let mut b = KernelBuilder::new("mt");
        let x = b.load_pattern(AddrPattern::Coalesced { base: 1 << 32, elem_bytes: 4 });
        let y = b.fp_add(&[Operand::Reg(x), Operand::Imm(1)]);
        let _ = b.fp_add(&[Operand::Reg(y), Operand::Imm(1)]);
        let k = b.finish(vec![]);
        let mut one = cfg();
        one.num_cores = 1;
        let t1 = trace_kernel(&k, LaunchConfig::new(32, 1)).unwrap();
        let t8 = trace_kernel(&k, LaunchConfig::new(256, 1)).unwrap();
        let r1 = simulate(&t1, &one, rr()).unwrap();
        let r8 = simulate(&t8, &one, rr()).unwrap();
        assert!(r8.ipc() > 2.0 * r1.ipc(), "8 warps should hide latency: {} vs {}", r8.ipc(), r1.ipc());
    }

    #[test]
    fn mshr_pressure_slows_divergent_loads() {
        // A maximally divergent load: 32 requests/warp. With 4 MSHRs the
        // same kernel must take longer than with 64.
        let mut b = KernelBuilder::new("div");
        let x = b.load_pattern(AddrPattern::Strided { base: 1 << 32, stride_bytes: 128 });
        let _ = b.fp_add(&[Operand::Reg(x)]);
        let k = b.finish(vec![]);
        let t = trace_kernel(&k, LaunchConfig::new(256, 1)).unwrap();
        let mut small = cfg();
        small.num_cores = 1;
        small.num_mshrs = 4;
        let mut big = small.clone();
        big.num_mshrs = 64;
        let slow = simulate(&t, &small, rr()).unwrap();
        let fast = simulate(&t, &big, rr()).unwrap();
        assert!(
            slow.cycles > fast.cycles + 100,
            "4 MSHRs {} vs 64 MSHRs {}",
            slow.cycles,
            fast.cycles
        );
    }

    #[test]
    fn dram_bandwidth_limits_write_floods() {
        let w = workloads::by_name("parboil_sad_calc8").unwrap().with_blocks(16);
        let t = w.trace().unwrap();
        let lo = simulate(&t, &cfg().with_dram_bandwidth(32.0), rr()).unwrap();
        let hi = simulate(&t, &cfg().with_dram_bandwidth(512.0), rr()).unwrap();
        assert!(
            lo.cycles as f64 > 1.2 * hi.cycles as f64,
            "write flood must be bandwidth sensitive: {} vs {}",
            lo.cycles,
            hi.cycles
        );
    }

    #[test]
    fn gto_and_rr_both_complete_with_same_work() {
        let w = workloads::by_name("cfd_step_factor").unwrap().with_blocks(16);
        let t = w.trace().unwrap();
        let a = simulate(&t, &cfg(), SchedulingPolicy::RoundRobin).unwrap();
        let b = simulate(&t, &cfg(), SchedulingPolicy::GreedyThenOldest).unwrap();
        assert_eq!(a.insts, b.insts, "same instructions under both policies");
        assert_eq!(a.insts, t.total_insts() as u64);
        assert!(a.cycles > 0 && b.cycles > 0);
    }

    #[test]
    fn barriers_serialize_block_phases() {
        // warp A has a long pre-barrier stall; warp B must wait at the
        // barrier until A arrives.
        let mut b = KernelBuilder::new("bar");
        let x = b.load_pattern(AddrPattern::Coalesced { base: 1 << 33, elem_bytes: 4 });
        let y = b.fp_add(&[Operand::Reg(x)]);
        let _ = b.alu(ValueOp::Add, &[Operand::Reg(y)]);
        b.sync();
        let _ = b.fp_add(&[Operand::Imm(1)]);
        let k = b.finish(vec![]);
        let t = trace_kernel(&k, LaunchConfig::new(64, 1)).unwrap();
        let mut one = cfg();
        one.num_cores = 1;
        let r = simulate(&t, &one, rr()).unwrap();
        // Total time must exceed the memory latency (barrier prevents warp
        // B from racing ahead); bound it loosely.
        assert!(r.cycles > 420, "barrier must hold warps: {}", r.cycles);
        assert_eq!(r.insts, t.total_insts() as u64);
    }

    #[test]
    fn waves_dispatch_all_blocks() {
        let w = workloads::by_name("sdk_vectoradd").unwrap().with_blocks(48); // 3 waves at 16 cores x 1 block? 8 warps/block → 4 blocks/core
        let t = w.trace().unwrap();
        let r = simulate(&t, &cfg(), rr()).unwrap();
        assert_eq!(r.insts, t.total_insts() as u64, "every instruction issued exactly once");
    }

    #[test]
    fn narrow_sfu_serializes_sfu_heavy_warps() {
        // Back-to-back independent SFU ops from many warps: with 4 lanes
        // (initiation interval 8) the unit throttles issue far below the
        // 32-lane configuration.
        let mut b = KernelBuilder::new("sfu");
        for i in 0..6 {
            let _ = b.sfu(&[Operand::Imm(i)]);
        }
        let k = b.finish(vec![]);
        let t = trace_kernel(&k, LaunchConfig::new(256, 1)).unwrap();
        let mut wide = cfg();
        wide.num_cores = 1;
        let narrow = wide.clone().with_sfu_per_core(4);
        let fast = simulate(&t, &wide, rr()).unwrap();
        let slow = simulate(&t, &narrow, rr()).unwrap();
        assert!(
            slow.cycles as f64 > 2.0 * fast.cycles as f64,
            "SFU serialization expected: {} vs {}",
            slow.cycles,
            fast.cycles
        );
    }

    #[test]
    fn result_is_deterministic() {
        let w = workloads::by_name("parboil_spmv").unwrap().with_blocks(8);
        let t = w.trace().unwrap();
        let a = simulate(&t, &cfg(), rr()).unwrap();
        let b = simulate(&t, &cfg(), rr()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cpi_definition_is_per_core() {
        let r = TimingResult {
            cycles: 100,
            insts: 400,
            num_cores: 4,
            per_core_insts: vec![100; 4],
            dram_requests: 0,
            dram_utilization: 0.0,
        };
        assert!((r.cpi() - 1.0).abs() < 1e-12);
        assert!((r.ipc() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn malformed_trace_is_rejected() {
        let w = workloads::by_name("sdk_vectoradd").unwrap().with_blocks(2);
        let mut t = w.trace().unwrap();
        t.warps.pop();
        assert!(matches!(simulate(&t, &cfg(), rr()), Err(SimError::MalformedTrace(_))));
    }

    #[test]
    fn invalid_config_is_rejected() {
        let w = workloads::by_name("sdk_vectoradd").unwrap().with_blocks(2);
        let t = w.trace().unwrap();
        let mut bad = cfg();
        bad.num_cores = 0;
        assert!(matches!(simulate(&t, &bad, rr()), Err(SimError::InvalidConfig(_))));
    }
}
