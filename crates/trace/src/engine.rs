//! The SIMT functional execution engine.
//!
//! Executes a kernel one warp at a time with a classic post-dominator
//! reconvergence stack: on a divergent branch the current frame is re-aimed
//! at the reconvergence PC and one frame per outcome is pushed; a frame
//! whose PC reaches its reconvergence point is popped, merging its lanes
//! back. Because the [`gpumech_isa::KernelBuilder`] only emits structured
//! control flow, every potentially-divergent branch carries its
//! reconvergence PC statically.
//!
//! The engine tracks a *warp-level* register scoreboard (last writer per
//! register), exactly like real hardware: a register write by any lane makes
//! the whole warp's later readers depend on that instruction.
//!
//! Before tracing, every kernel passes through the `gpumech-analyze`
//! pre-trace hook: kernels with Error-severity findings (mis-placed
//! reconvergence points, reads of never-written registers, irreducible
//! control flow) are rejected with [`TraceError::RejectedByAnalysis`], and
//! branches the analyzer proves warp-uniform take a fast path that
//! evaluates the condition once per warp instead of once per lane and never
//! touches the reconvergence stack. Debug builds cross-check every static
//! fact against observed execution (`debug_assert!`), so the fast path is
//! byte-identical to the per-lane path — see `tests/golden_workloads.rs`.

use gpumech_analyze::{KernelAnalysis, RejectReason};
use gpumech_isa::{
    kernel::{BranchCond, KernelError, NUM_REGS},
    InstKind, Kernel, Operand, Reg, ValueOp, WarpId, WARP_SIZE,
};
use gpumech_obs::{CancelToken, Interrupt};

use crate::launch::LaunchConfig;
use crate::record::{KernelTrace, TraceInst, WarpTrace};
use crate::splitmix64;

/// Upper bound on dynamic instructions per warp; exceeded only by a
/// non-terminating workload definition (reported as an error, not a hang).
pub const MAX_DYN_INSTS_PER_WARP: usize = 1_000_000;

/// Seed mixed into synthetic memory contents so loaded values are
/// deterministic functions of their address.
const MEMORY_SEED: u64 = 0x5_EED0_F6DE_C0DE;

/// Error produced while tracing a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The kernel failed structural validation.
    InvalidKernel(KernelError),
    /// The static analyzer found Error-severity defects (pre-trace hook).
    RejectedByAnalysis {
        /// Name of the rejected kernel.
        kernel: String,
        /// Defect class that triggered the rejection.
        reason: RejectReason,
        /// Rendered Error-severity diagnostics, in severity order.
        findings: Vec<String>,
    },
    /// A warp exceeded [`MAX_DYN_INSTS_PER_WARP`] — the kernel does not
    /// terminate for this input.
    InstLimit {
        /// The warp that overran the limit.
        warp: WarpId,
    },
    /// A trace violates a structural invariant (checked on load and before
    /// simulation — see [`crate::KernelTrace::validate`]).
    CorruptTrace {
        /// Kernel name from the trace header.
        kernel: String,
        /// Grid-global index of the offending warp, when attributable.
        warp: Option<usize>,
        /// The violated invariant.
        detail: String,
    },
    /// An internal tracer invariant failed — a malformed kernel slipped
    /// past the pre-trace checks; reported instead of panicking.
    BrokenInvariant {
        /// Kernel being traced.
        kernel: String,
        /// Warp being traced.
        warp: WarpId,
        /// Static PC at which the invariant failed.
        pc: u32,
        /// The violated invariant.
        detail: &'static str,
    },
    /// Tracing was interrupted by a [`CancelToken`] (explicit cancellation
    /// or an expired deadline) before the kernel finished.
    Interrupted(Interrupt),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::InvalidKernel(e) => write!(f, "invalid kernel: {e}"),
            TraceError::RejectedByAnalysis { kernel, reason, findings } => {
                write!(
                    f,
                    "kernel '{kernel}' rejected by static analysis ({reason}, {} finding{}): {}",
                    findings.len(),
                    if findings.len() == 1 { "" } else { "s" },
                    findings.first().map_or("", String::as_str)
                )
            }
            TraceError::InstLimit { warp } => {
                write!(f, "warp {warp} exceeded {MAX_DYN_INSTS_PER_WARP} dynamic instructions")
            }
            TraceError::CorruptTrace { kernel, warp, detail } => match warp {
                Some(w) => write!(f, "corrupt trace for kernel '{kernel}', warp {w}: {detail}"),
                None => write!(f, "corrupt trace for kernel '{kernel}': {detail}"),
            },
            TraceError::BrokenInvariant { kernel, warp, pc, detail } => {
                write!(f, "tracer invariant broken in kernel '{kernel}', warp {warp}, pc {pc}: {detail}")
            }
            TraceError::Interrupted(why) => write!(f, "tracing interrupted: {why}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::InvalidKernel(e) => Some(e),
            TraceError::RejectedByAnalysis { .. }
            | TraceError::InstLimit { .. }
            | TraceError::CorruptTrace { .. }
            | TraceError::BrokenInvariant { .. }
            | TraceError::Interrupted(_) => None,
        }
    }
}

impl From<KernelError> for TraceError {
    fn from(e: KernelError) -> Self {
        TraceError::InvalidKernel(e)
    }
}

const FULL_MASK: u32 = u32::MAX;
const NO_RECONV: u32 = u32::MAX;

/// Cache-line granularity the coalescing cross-checks assume; must match
/// the 128-byte line the analyzer's `max_requests` bound is stated over.
#[cfg(debug_assertions)]
const LINE_SHIFT: u32 = 7;

/// Options controlling trace generation. The default enables every
/// analysis-guided optimization; disabling them forces the conservative
/// per-lane path (useful for A/B-testing that both produce identical
/// traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOptions {
    /// Evaluate statically warp-uniform branch conditions once per warp
    /// (first active lane) instead of once per lane, skipping the
    /// reconvergence-stack bookkeeping such branches can never need.
    pub uniform_branch_fast_path: bool,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions { uniform_branch_fast_path: true }
    }
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    pc: u32,
    mask: u32,
    reconv: u32,
}

/// How many dynamic instructions a warp machine retires between
/// [`CancelToken`] checks — frequent enough that a deadline lands within
/// microseconds, rare enough that the clock read is amortized away.
const CANCEL_CHECK_MASK: usize = 0x3FF;

struct WarpMachine<'k> {
    kernel: &'k Kernel,
    analysis: &'k KernelAnalysis,
    opts: TraceOptions,
    cancel: &'k CancelToken,
    launch: LaunchConfig,
    warp: WarpId,
    /// `regs[reg][lane]`.
    regs: Vec<[u64; WARP_SIZE]>,
    stack: Vec<Frame>,
    last_writer: [Option<u32>; NUM_REGS],
}

impl<'k> WarpMachine<'k> {
    fn new(
        kernel: &'k Kernel,
        analysis: &'k KernelAnalysis,
        opts: TraceOptions,
        cancel: &'k CancelToken,
        launch: LaunchConfig,
        warp: WarpId,
    ) -> Self {
        Self {
            kernel,
            analysis,
            opts,
            cancel,
            launch,
            warp,
            regs: vec![[0u64; WARP_SIZE]; NUM_REGS],
            stack: vec![Frame { pc: 0, mask: FULL_MASK, reconv: NO_RECONV }],
            last_writer: [None; NUM_REGS],
        }
    }

    fn operand(&self, op: Operand, lane: usize) -> u64 {
        match op {
            Operand::Reg(Reg(r)) => self.regs[r as usize][lane],
            Operand::Imm(v) => v,
            Operand::Tid => self.launch.global_tid(self.warp, lane),
            Operand::Lane => lane as u64,
            Operand::WarpInBlock => self.launch.warp_in_block(self.warp) as u64,
            Operand::Block => self.launch.block_of_warp(self.warp).index() as u64,
            Operand::TidInBlock => {
                (self.launch.warp_in_block(self.warp) * WARP_SIZE + lane) as u64
            }
            Operand::Param(i) => self.kernel.params[i as usize],
        }
    }

    fn eval(&self, op: ValueOp, srcs: &[Operand], lane: usize) -> u64 {
        let v = |i: usize| self.operand(srcs[i], lane);
        let fold = |f: fn(u64, u64) -> u64, init: u64| {
            srcs.iter().map(|&s| self.operand(s, lane)).fold(init, f)
        };
        match op {
            ValueOp::Mov => if srcs.is_empty() { 0 } else { v(0) },
            ValueOp::Add => fold(u64::wrapping_add, 0),
            ValueOp::Sub => v(0).wrapping_sub(v(1)),
            ValueOp::Mul => fold(u64::wrapping_mul, 1),
            ValueOp::Div => v(0) / v(1).max(1),
            ValueOp::Rem => v(0) % v(1).max(1),
            ValueOp::And => fold(|a, b| a & b, u64::MAX),
            ValueOp::Xor => fold(|a, b| a ^ b, 0),
            ValueOp::Shl => v(0) << (v(1) & 63),
            ValueOp::Shr => v(0) >> (v(1) & 63),
            ValueOp::Min => fold(u64::min, u64::MAX),
            ValueOp::Max => fold(u64::max, 0),
            ValueOp::CmpLt => u64::from(v(0) < v(1)),
            ValueOp::CmpEq => u64::from(v(0) == v(1)),
            ValueOp::CmpNe => u64::from(v(0) != v(1)),
            ValueOp::Select => if v(0) != 0 { v(1) } else { v(2) },
            ValueOp::Hash => splitmix64(fold(|a, b| a ^ b, 0)),
        }
    }

    fn collect_deps(&self, srcs: &[Operand]) -> Vec<u32> {
        let mut deps: Vec<u32> = srcs
            .iter()
            .filter_map(|s| match s {
                Operand::Reg(Reg(r)) => self.last_writer[*r as usize],
                _ => None,
            })
            .collect();
        deps.sort_unstable();
        deps.dedup();
        deps
    }

    /// Per-lane evaluation of a conditional branch: the mask of active
    /// lanes that jump to the target.
    fn taken_mask(&self, inst: &gpumech_isa::StaticInst, mask: u32) -> u32 {
        let mut t = 0u32;
        for lane in 0..WARP_SIZE {
            if mask & (1 << lane) != 0 {
                let c = self.operand(inst.srcs[0], lane);
                let jumps = match inst.cond {
                    BranchCond::IfZero => c == 0,
                    BranchCond::IfNonZero => c != 0,
                    BranchCond::Always => unreachable!("taken_mask is for conditional branches"),
                };
                if jumps {
                    t |= 1 << lane;
                }
            }
        }
        t
    }

    fn run(mut self) -> Result<(WarpTrace, RunStats), TraceError> {
        let mut insts: Vec<TraceInst> = Vec::new();
        let mut stats = RunStats::default();

        while let Some(&top) = self.stack.last() {
            if top.pc == top.reconv {
                self.stack.pop();
                continue;
            }
            if insts.len() >= MAX_DYN_INSTS_PER_WARP {
                return Err(TraceError::InstLimit { warp: self.warp });
            }
            if insts.len() & CANCEL_CHECK_MASK == 0 {
                self.cancel.check().map_err(TraceError::Interrupted)?;
            }

            let inst = &self.kernel.insts[top.pc as usize];
            let mask = top.mask;
            let idx = insts.len() as u32;

            // Record the dynamic instruction (addresses filled below).
            let mut addrs = Vec::new();
            if inst.kind.is_mem() {
                addrs.reserve(mask.count_ones() as usize);
                for lane in 0..WARP_SIZE {
                    if mask & (1 << lane) != 0 {
                        addrs.push(self.operand(inst.srcs[0], lane));
                    }
                }
                // Cross-check: the observed line count must respect the
                // analyzer's per-warp coalescing bound.
                #[cfg(debug_assertions)]
                if let Some(Some(access)) = self.analysis.coalescing.get(top.pc as usize) {
                    let lines = distinct_lines(&addrs);
                    debug_assert!(
                        lines <= access.max_requests,
                        "pc {}: warp touched {lines} lines, static bound is {} ({:?})",
                        top.pc,
                        access.max_requests,
                        access.class,
                    );
                }
                // Cross-check: the observed shared-memory bank-conflict
                // degree must respect the analyzer's full-mask bound.
                #[cfg(debug_assertions)]
                if let Some(fact) = self.analysis.shared_fact(top.pc) {
                    let observed = observed_bank_degree(&addrs);
                    debug_assert!(
                        observed <= fact.bank_degree,
                        "pc {}: warp hit {observed}-way bank conflict, static bound is {}-way",
                        top.pc,
                        fact.bank_degree,
                    );
                }
            }
            insts.push(TraceInst {
                pc: top.pc,
                kind: inst.kind,
                deps: self.collect_deps(&inst.srcs),
                active_mask: mask,
                addrs,
            });

            match inst.kind {
                InstKind::Branch => {
                    let taken = match inst.cond {
                        BranchCond::Always => mask,
                        BranchCond::IfZero | BranchCond::IfNonZero
                            if self.opts.uniform_branch_fast_path
                                && self.analysis.is_branch_uniform(top.pc) =>
                        {
                            // Statically warp-uniform condition: every
                            // active lane agrees, so evaluate it once on the
                            // first active lane. Either all active lanes
                            // jump or none do — the reconvergence stack is
                            // never touched.
                            let lane = mask.trailing_zeros() as usize;
                            let c = self.operand(inst.srcs[0], lane);
                            let jumps = match inst.cond {
                                BranchCond::IfZero => c == 0,
                                BranchCond::IfNonZero => c != 0,
                                BranchCond::Always => unreachable!(),
                            };
                            let t = if jumps { mask } else { 0 };
                            debug_assert_eq!(
                                t,
                                self.taken_mask(inst, mask),
                                "pc {}: statically uniform branch observed divergent",
                                top.pc,
                            );
                            t
                        }
                        BranchCond::IfZero | BranchCond::IfNonZero => {
                            self.taken_mask(inst, mask)
                        }
                    };
                    let fall = mask & !taken;
                    // Targets/reconvergence PCs are guaranteed by kernel
                    // validation and the stack top by the loop condition;
                    // report (never panic) if an invariant is broken.
                    let Some(target) = inst.target else {
                        return Err(TraceError::BrokenInvariant {
                            kernel: self.kernel.name.clone(),
                            warp: self.warp,
                            pc: top.pc,
                            detail: "branch without a target survived validation",
                        });
                    };
                    let reconv = inst.reconv;
                    let Some(frame) = self.stack.last_mut() else { break };
                    if taken != 0 && fall != 0 {
                        stats.divergent_branches += 1;
                    } else {
                        stats.uniform_branches += 1;
                    }
                    match (taken != 0, fall != 0) {
                        (true, false) => frame.pc = target,
                        (false, true) => frame.pc += 1,
                        (true, true) => {
                            let Some(reconv) = reconv else {
                                return Err(TraceError::BrokenInvariant {
                                    kernel: self.kernel.name.clone(),
                                    warp: self.warp,
                                    pc: top.pc,
                                    detail: "divergent branch without a reconvergence pc",
                                });
                            };
                            frame.pc = reconv;
                            let fall_pc = insts[idx as usize].pc + 1;
                            self.stack.push(Frame { pc: fall_pc, mask: fall, reconv });
                            self.stack.push(Frame { pc: target, mask: taken, reconv });
                        }
                        (false, false) => unreachable!("branch under empty mask"),
                    }
                }
                InstKind::Exit => {
                    // Retire these lanes from every frame; drop emptied frames.
                    for f in &mut self.stack {
                        f.mask &= !mask;
                    }
                    self.stack.retain(|f| f.mask != 0);
                }
                _ => {
                    if let Some(Reg(dst)) = inst.dst {
                        if inst.kind == InstKind::Load(gpumech_isa::MemSpace::Global)
                            || inst.kind == InstKind::Load(gpumech_isa::MemSpace::Shared)
                        {
                            for lane in 0..WARP_SIZE {
                                if mask & (1 << lane) != 0 {
                                    let addr = self.operand(inst.srcs[0], lane);
                                    self.regs[dst as usize][lane] =
                                        splitmix64(addr ^ MEMORY_SEED);
                                }
                            }
                        } else {
                            for lane in 0..WARP_SIZE {
                                if mask & (1 << lane) != 0 {
                                    self.regs[dst as usize][lane] =
                                        self.eval(inst.op, &inst.srcs, lane);
                                }
                            }
                        }
                        self.last_writer[dst as usize] = Some(idx);
                    }
                    let Some(frame) = self.stack.last_mut() else { break };
                    frame.pc += 1;
                }
            }
        }

        Ok((
            WarpTrace {
                warp: self.warp,
                block: self.launch.block_of_warp(self.warp),
                insts,
            },
            stats,
        ))
    }
}

/// Branch-behaviour tallies from one warp's functional execution,
/// aggregated per kernel before being emitted as `trace.engine.*`
/// counters (so the hot loop only bumps plain integers).
#[derive(Debug, Clone, Copy, Default)]
struct RunStats {
    /// Conditional branches where active lanes split both ways.
    divergent_branches: u64,
    /// Branch executions where every active lane agreed.
    uniform_branches: u64,
}

impl RunStats {
    fn absorb(&mut self, other: RunStats) {
        self.divergent_branches += other.divergent_branches;
        self.uniform_branches += other.uniform_branches;
    }
}

#[cfg(debug_assertions)]
fn distinct_lines(addrs: &[u64]) -> u32 {
    let mut lines: Vec<u64> = addrs.iter().map(|a| a >> LINE_SHIFT).collect();
    lines.sort_unstable();
    lines.dedup();
    lines.len() as u32
}

/// Bank-conflict degree of one warp access under the default 32-bank × 4 B
/// geometry (the model the pre-trace analysis uses): max distinct words in
/// any one bank, lanes sharing a word broadcasting in one cycle.
#[cfg(debug_assertions)]
fn observed_bank_degree(addrs: &[u64]) -> u32 {
    let mut words: Vec<(u64, u64)> = addrs.iter().map(|a| ((a / 4) % 32, a / 4)).collect();
    words.sort_unstable();
    words.dedup();
    let mut best = 0u32;
    let mut i = 0;
    while i < words.len() {
        let bank = words[i].0;
        let mut n = 0u32;
        while i < words.len() && words[i].0 == bank {
            n += 1;
            i += 1;
        }
        best = best.max(n);
    }
    best.max(1)
}

/// Runs the pre-trace static analysis hook, rejecting kernels with
/// Error-severity findings.
fn pre_trace_analysis(kernel: &Kernel) -> Result<KernelAnalysis, TraceError> {
    // validate() first so callers keep getting the precise
    // `TraceError::InvalidKernel(KernelError)` they always got for basic
    // structural breakage; the analyzer then catches the deeper defects.
    kernel.validate()?;
    let analysis = gpumech_analyze::analyze(kernel);
    if let Some(reason) = analysis.reject_reason() {
        return Err(TraceError::RejectedByAnalysis {
            kernel: kernel.name.clone(),
            reason,
            findings: analysis
                .diagnostics_at_least(gpumech_analyze::Severity::Error)
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
        });
    }
    Ok(analysis)
}

/// Functionally executes one warp and returns its dynamic trace.
///
/// # Errors
///
/// Returns [`TraceError::InvalidKernel`] if the kernel fails validation,
/// [`TraceError::RejectedByAnalysis`] if the static analyzer finds
/// Error-severity defects, and [`TraceError::InstLimit`] if the warp does
/// not terminate within [`MAX_DYN_INSTS_PER_WARP`] instructions.
pub fn trace_warp(
    kernel: &Kernel,
    launch: LaunchConfig,
    warp: WarpId,
) -> Result<WarpTrace, TraceError> {
    let analysis = pre_trace_analysis(kernel)?;
    let cancel = CancelToken::never();
    let (trace, stats) =
        WarpMachine::new(kernel, &analysis, TraceOptions::default(), &cancel, launch, warp).run()?;
    gpumech_obs::counter!("trace.engine.insts", trace.insts.len() as u64);
    gpumech_obs::counter!("trace.engine.divergent_branches", stats.divergent_branches);
    gpumech_obs::counter!("trace.engine.uniform_branches", stats.uniform_branches);
    Ok(trace)
}

/// Functionally executes every warp of a launch and returns the full kernel
/// trace. Warps are independent (no inter-thread communication in the IR),
/// so this is simply one warp machine per warp over the grid, sharing one
/// static analysis.
///
/// # Errors
///
/// Propagates the first [`TraceError`] encountered.
pub fn trace_kernel(kernel: &Kernel, launch: LaunchConfig) -> Result<KernelTrace, TraceError> {
    trace_kernel_opts(kernel, launch, TraceOptions::default())
}

/// [`trace_kernel`] with explicit [`TraceOptions`] — used to A/B the
/// analysis-guided fast paths against the conservative per-lane execution.
///
/// # Errors
///
/// Propagates the first [`TraceError`] encountered.
pub fn trace_kernel_opts(
    kernel: &Kernel,
    launch: LaunchConfig,
    opts: TraceOptions,
) -> Result<KernelTrace, TraceError> {
    trace_kernel_cancellable(kernel, launch, opts, &CancelToken::never())
}

/// [`trace_kernel_opts`] under a [`CancelToken`]: the warp machines poll
/// the token at a fixed dynamic-instruction stride and between warps, so
/// an expired deadline or explicit cancellation aborts tracing within a
/// bounded amount of work.
///
/// # Errors
///
/// Propagates the first [`TraceError`] encountered;
/// [`TraceError::Interrupted`] once `cancel` fires.
pub fn trace_kernel_cancellable(
    kernel: &Kernel,
    launch: LaunchConfig,
    opts: TraceOptions,
    cancel: &CancelToken,
) -> Result<KernelTrace, TraceError> {
    let _span = gpumech_obs::span!("trace.engine.kernel", name = kernel.name.as_str());
    let analysis = pre_trace_analysis(kernel)?;
    let mut stats = RunStats::default();
    let warps = launch
        .warps()
        .map(|w| {
            cancel.check().map_err(TraceError::Interrupted)?;
            WarpMachine::new(kernel, &analysis, opts, cancel, launch, w).run().map(|(t, s)| {
                stats.absorb(s);
                t
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    gpumech_obs::counter!("trace.engine.warps", warps.len() as u64);
    gpumech_obs::counter!(
        "trace.engine.insts",
        warps.iter().map(|w| w.insts.len() as u64).sum::<u64>()
    );
    gpumech_obs::counter!("trace.engine.divergent_branches", stats.divergent_branches);
    gpumech_obs::counter!("trace.engine.uniform_branches", stats.uniform_branches);
    Ok(KernelTrace { name: kernel.name.clone(), launch, warps })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use gpumech_isa::{AddrPattern, KernelBuilder, MemSpace};

    fn launch1() -> LaunchConfig {
        LaunchConfig::new(32, 1)
    }

    #[test]
    fn straight_line_trace_has_program_order_and_deps() {
        let mut b = KernelBuilder::new("k");
        let a = b.alu(ValueOp::Add, &[Operand::Tid, Operand::Imm(1)]);
        let c = b.alu(ValueOp::Mul, &[Operand::Reg(a), Operand::Imm(2)]);
        let _ = b.fp_add(&[Operand::Reg(c), Operand::Reg(a)]);
        let k = b.finish(vec![]);
        let t = trace_warp(&k, launch1(), WarpId::new(0)).unwrap();
        assert_eq!(t.len(), 4); // 3 + exit
        assert_eq!(t.insts[0].deps, Vec::<u32>::new());
        assert_eq!(t.insts[1].deps, vec![0]);
        assert_eq!(t.insts[2].deps, vec![0, 1]);
        assert_eq!(t.insts[0].active_mask, u32::MAX);
    }

    #[test]
    fn if_else_divergence_executes_both_paths_with_split_masks() {
        let mut b = KernelBuilder::new("k");
        let c = b.alu(ValueOp::CmpLt, &[Operand::Lane, Operand::Imm(8)]);
        b.if_begin(Operand::Reg(c));
        let _ = b.alu(ValueOp::Add, &[Operand::Imm(10)]); // then: lanes 0..8
        b.if_else();
        let _ = b.alu(ValueOp::Add, &[Operand::Imm(20)]); // else: lanes 8..32
        b.if_end();
        let _ = b.alu(ValueOp::Add, &[Operand::Imm(30)]); // reconverged
        let k = b.finish(vec![]);
        let t = trace_warp(&k, launch1(), WarpId::new(0)).unwrap();

        let then_mask = 0x0000_00FFu32;
        // Instruction stream: cmp, branch, (then add OR else path first
        // depending on taken order) ... we take the branch-taken path first,
        // which for IfZero is the *else* arm (lanes >= 8).
        let masks: Vec<(u32, u32)> = t.insts.iter().map(|i| (i.pc, i.active_mask)).collect();
        // cmp and branch run under the full mask.
        assert_eq!(masks[0], (0, u32::MAX));
        assert_eq!(masks[1], (1, u32::MAX));
        // Both arms appear, with complementary masks.
        let then_inst = t.insts.iter().find(|i| i.pc == 2).expect("then arm executed");
        let else_inst = t.insts.iter().find(|i| i.pc == 4).expect("else arm executed");
        assert_eq!(then_inst.active_mask, then_mask);
        assert_eq!(else_inst.active_mask, !then_mask);
        // The reconverged instruction runs under the full mask again.
        let merged = t.insts.iter().find(|i| i.pc == 5).expect("reconverged inst");
        assert_eq!(merged.active_mask, u32::MAX);
    }

    #[test]
    fn uniform_branch_does_not_split() {
        let mut b = KernelBuilder::new("k");
        let c = b.alu(ValueOp::CmpLt, &[Operand::Lane, Operand::Imm(64)]); // always true
        b.if_begin(Operand::Reg(c));
        let _ = b.alu(ValueOp::Add, &[Operand::Imm(1)]);
        b.if_else();
        let _ = b.alu(ValueOp::Add, &[Operand::Imm(2)]);
        b.if_end();
        let k = b.finish(vec![]);
        let t = trace_warp(&k, launch1(), WarpId::new(0)).unwrap();
        // Else arm (pc 4) never executes.
        assert!(t.insts.iter().all(|i| i.pc != 4));
        assert!(t.insts.iter().any(|i| i.pc == 2 && i.active_mask == u32::MAX));
    }

    #[test]
    fn lane_dependent_loop_trip_counts_reconverge() {
        // Do-while loop: lane iterates max(lane % 4, 1) times.
        let mut b = KernelBuilder::new("k");
        let trip = b.alu(ValueOp::Rem, &[Operand::Lane, Operand::Imm(4)]);
        let i = b.alu(ValueOp::Mov, &[Operand::Imm(0)]);
        b.loop_begin();
        b.alu_into(i, ValueOp::Add, &[Operand::Reg(i), Operand::Imm(1)]);
        let c = b.alu(ValueOp::CmpLt, &[Operand::Reg(i), Operand::Reg(trip)]);
        b.loop_end_while(Operand::Reg(c));
        let _after = b.alu(ValueOp::Add, &[Operand::Imm(99)]);
        let k = b.finish(vec![]);
        let t = trace_warp(&k, launch1(), WarpId::new(0)).unwrap();

        // The loop body add (pc 2) executes 3 times: masks shrink as lanes
        // retire (trip counts 0/1 retire after iteration 1, trip 2 after
        // iteration 2, trip 3 after iteration 3).
        let body_masks: Vec<u32> =
            t.insts.iter().filter(|i| i.pc == 2).map(|i| i.active_mask).collect();
        assert_eq!(body_masks.len(), 3);
        assert_eq!(body_masks[0], u32::MAX);
        assert!(body_masks.windows(2).all(|w| (w[1] & !w[0]) == 0), "masks only shrink");
        assert_eq!(body_masks[1].count_ones(), 16, "half the lanes reach trip 2");
        assert_eq!(body_masks[2].count_ones(), 8, "one lane in four reaches trip 3");
        // After the loop, everyone reconverges.
        let merged = t.insts.iter().rev().find(|i| i.kind == InstKind::IntAlu).unwrap();
        assert_eq!(merged.active_mask, u32::MAX);
    }

    #[test]
    fn memory_instructions_record_per_lane_addresses() {
        let mut b = KernelBuilder::new("k");
        let _ = b.load_pattern(AddrPattern::Coalesced { base: 0x1000, elem_bytes: 4 });
        b.store_pattern(AddrPattern::Strided { base: 0x10_0000, stride_bytes: 128 }, Operand::Imm(7));
        let k = b.finish(vec![]);
        let t = trace_warp(&k, LaunchConfig::new(64, 2), WarpId::new(3)).unwrap();

        let load = t.insts.iter().find(|i| i.kind == InstKind::Load(MemSpace::Global)).unwrap();
        assert_eq!(load.addrs.len(), 32);
        // Warp 3 covers tids 96..128 → addresses 0x1000 + 4*tid.
        assert_eq!(load.addrs[0], 0x1000 + 4 * 96);
        assert_eq!(load.addrs[31], 0x1000 + 4 * 127);

        let store = t.insts.iter().find(|i| i.kind == InstKind::Store(MemSpace::Global)).unwrap();
        assert_eq!(store.addrs.len(), 32);
        assert_eq!(store.addrs[1] - store.addrs[0], 128, "one line per lane");
    }

    #[test]
    fn load_feeds_dependency_into_consumer() {
        let mut b = KernelBuilder::new("k");
        let x = b.load_pattern(AddrPattern::Coalesced { base: 0, elem_bytes: 4 });
        let _ = b.fp_add(&[Operand::Reg(x), Operand::Imm(1)]);
        let k = b.finish(vec![]);
        let t = trace_warp(&k, launch1(), WarpId::new(0)).unwrap();
        let load_idx = t.insts.iter().position(|i| i.kind.is_global_load()).unwrap() as u32;
        let consumer = t.insts.iter().find(|i| i.kind == InstKind::FpAdd).unwrap();
        assert!(consumer.deps.contains(&load_idx));
    }

    #[test]
    fn loaded_values_are_deterministic_functions_of_address() {
        let mut b = KernelBuilder::new("k");
        let x = b.load_pattern(AddrPattern::Broadcast { addr: 0x42 });
        let c = b.alu(ValueOp::Rem, &[Operand::Reg(x), Operand::Imm(2)]);
        b.if_begin(Operand::Reg(c));
        let _ = b.alu(ValueOp::Add, &[Operand::Imm(1)]);
        b.if_end();
        let k = b.finish(vec![]);
        let t1 = trace_warp(&k, launch1(), WarpId::new(0)).unwrap();
        let t2 = trace_warp(&k, launch1(), WarpId::new(0)).unwrap();
        assert_eq!(t1, t2, "tracing is deterministic");
    }

    #[test]
    fn infinite_loop_reports_inst_limit() {
        let mut b = KernelBuilder::new("k");
        b.loop_begin();
        let _ = b.alu(ValueOp::Add, &[Operand::Imm(1)]);
        b.loop_end_while(Operand::Imm(1)); // always true
        let k = b.finish(vec![]);
        let err = trace_warp(&k, launch1(), WarpId::new(0)).unwrap_err();
        assert!(matches!(err, TraceError::InstLimit { .. }));
    }

    #[test]
    fn cancelled_token_aborts_tracing_before_any_warp() {
        let mut b = KernelBuilder::new("k");
        let _ = b.alu(ValueOp::Add, &[Operand::Tid]);
        let k = b.finish(vec![]);
        let cancel = CancelToken::never();
        cancel.cancel();
        let err =
            trace_kernel_cancellable(&k, launch1(), TraceOptions::default(), &cancel).unwrap_err();
        assert_eq!(err, TraceError::Interrupted(Interrupt::Cancelled));
    }

    #[test]
    fn deadline_interrupts_a_long_running_warp_mid_trace() {
        // An (effectively) non-terminating loop; the fake-clock deadline
        // must fire via the in-loop poll long before the InstLimit.
        let mut b = KernelBuilder::new("k");
        b.loop_begin();
        let _ = b.alu(ValueOp::Add, &[Operand::Imm(1)]);
        b.loop_end_while(Operand::Imm(1));
        let k = b.finish(vec![]);
        let clock = std::sync::Arc::new(gpumech_obs::FakeClock::new(1_000));
        let cancel = CancelToken::with_clock(clock, 10_000);
        let err =
            trace_kernel_cancellable(&k, launch1(), TraceOptions::default(), &cancel).unwrap_err();
        assert_eq!(err, TraceError::Interrupted(Interrupt::DeadlineExceeded));
    }

    #[test]
    fn kernel_trace_covers_every_warp() {
        let mut b = KernelBuilder::new("k");
        let _ = b.alu(ValueOp::Add, &[Operand::Tid]);
        let k = b.finish(vec![]);
        let launch = LaunchConfig::new(64, 3);
        let t = trace_kernel(&k, launch).unwrap();
        assert_eq!(t.warps.len(), 6);
        for (i, w) in t.warps.iter().enumerate() {
            assert_eq!(w.warp.index(), i);
            assert_eq!(w.len(), 2);
        }
        assert_eq!(t.total_insts(), 12);
    }

    #[test]
    fn nested_divergence_restores_masks() {
        let mut b = KernelBuilder::new("k");
        let c1 = b.alu(ValueOp::CmpLt, &[Operand::Lane, Operand::Imm(16)]);
        b.if_begin(Operand::Reg(c1));
        let c2 = b.alu(ValueOp::CmpLt, &[Operand::Lane, Operand::Imm(8)]);
        b.if_begin(Operand::Reg(c2));
        let _ = b.alu(ValueOp::Add, &[Operand::Imm(1)]); // lanes 0..8
        b.if_end();
        let _ = b.alu(ValueOp::Add, &[Operand::Imm(2)]); // lanes 0..16
        b.if_end();
        let _ = b.alu(ValueOp::Add, &[Operand::Imm(3)]); // all lanes
        let k = b.finish(vec![]);
        let t = trace_warp(&k, launch1(), WarpId::new(0)).unwrap();
        let by_pc = |pc: u32| t.insts.iter().find(|i| i.pc == pc).map(|i| i.active_mask);
        assert_eq!(by_pc(4), Some(0xFF), "inner body: lanes 0..8");
        assert_eq!(by_pc(5), Some(0xFFFF), "outer body after inner merge: lanes 0..16");
        assert_eq!(by_pc(6), Some(u32::MAX), "full reconvergence");
    }

    #[test]
    fn corrupted_reconvergence_pc_is_rejected_before_tracing() {
        let mut b = KernelBuilder::new("k");
        let c = b.alu(ValueOp::CmpLt, &[Operand::Lane, Operand::Imm(8)]);
        b.if_begin(Operand::Reg(c));
        let _ = b.alu(ValueOp::Add, &[Operand::Imm(1)]);
        b.if_end();
        let mut k = b.finish(vec![]);
        let branch_pc =
            k.insts.iter().position(|i| i.kind == InstKind::Branch).expect("has a branch");
        // In range (passes validate) but not the true post-dominator.
        k.insts[branch_pc].reconv = Some(branch_pc as u32 + 1);
        assert!(k.validate().is_ok());
        let err = trace_kernel(&k, launch1()).expect_err("analysis must reject");
        match err {
            TraceError::RejectedByAnalysis { kernel, reason, findings } => {
                assert_eq!(kernel, "k");
                assert_eq!(reason, RejectReason::Structural);
                assert!(
                    findings.iter().any(|f| f.contains("reconv-mismatch")),
                    "findings: {findings:?}"
                );
            }
            other => panic!("expected RejectedByAnalysis, got {other}"),
        }
    }

    #[test]
    fn divergent_barrier_is_rejected_with_a_typed_reason() {
        let mut b = KernelBuilder::new("k");
        let c = b.alu(ValueOp::CmpLt, &[Operand::Lane, Operand::Imm(8)]);
        b.if_begin(Operand::Reg(c));
        b.sync();
        b.if_end();
        let k = b.finish(vec![]);
        assert!(k.validate().is_ok(), "divergence is beyond basic validation");
        let err = trace_kernel(&k, launch1()).expect_err("analysis must reject");
        match err {
            TraceError::RejectedByAnalysis { reason, findings, .. } => {
                assert_eq!(reason, RejectReason::BarrierDivergence);
                assert!(
                    findings.iter().any(|f| f.contains("barrier-divergence")),
                    "findings: {findings:?}"
                );
            }
            other => panic!("expected RejectedByAnalysis, got {other}"),
        }
    }

    #[test]
    fn read_before_write_is_rejected_before_tracing() {
        let mut b = KernelBuilder::new("k");
        let _ = b.alu(ValueOp::Add, &[Operand::Reg(gpumech_isa::Reg(9)), Operand::Imm(1)]);
        let k = b.finish(vec![]);
        let err = trace_kernel(&k, launch1()).expect_err("analysis must reject");
        assert!(
            err.to_string().contains("read-before-write"),
            "expected a read-before-write diagnostic, got: {err}"
        );
    }
}
