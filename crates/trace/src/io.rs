//! Trace serialization: a compact binary format for kernel traces.
//!
//! The paper's workflow traces a kernel *once* per input and re-models it
//! for many hardware configurations (Section VI-D); persisting traces is
//! what makes that amortization real. JSON (via serde) works but is ~20x
//! larger than necessary — this module provides a dependency-free binary
//! format using varint encoding and per-warp delta compression of memory
//! addresses.
//!
//! Format (little-endian, versioned):
//!
//! ```text
//! magic "GPUMECHT" | u8 version | varint name_len | name bytes
//! varint threads_per_block | varint num_blocks | varint num_warps
//! per warp: varint n_insts, then per instruction:
//!   varint pc | u8 kind tag | varint n_deps | varint delta-coded deps
//!   u32 active_mask | varint n_addrs | zigzag-varint delta-coded addrs
//! ```
//!
//! # Example
//!
//! ```
//! use gpumech_trace::{workloads, io};
//!
//! let trace = workloads::by_name("sdk_vectoradd").ok_or("missing workload")?.with_blocks(2).trace()?;
//! let bytes = io::encode(&trace);
//! let back = io::decode(&bytes)?;
//! assert_eq!(trace, back);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use gpumech_isa::{BlockId, InstKind, MemSpace, WarpId};

use crate::engine::TraceError;
use crate::launch::LaunchConfig;
use crate::record::{KernelTrace, TraceInst, WarpTrace};

const MAGIC: &[u8; 8] = b"GPUMECHT";
const VERSION: u8 = 1;

/// Error produced while decoding a binary trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer does not start with the format magic.
    BadMagic,
    /// The format version is unsupported.
    BadVersion(u8),
    /// The buffer ended mid-structure.
    Truncated,
    /// An instruction-kind tag is unknown.
    BadKind(u8),
    /// A string field is not valid UTF-8.
    BadString,
    /// The launch geometry stored in the header is invalid.
    BadLaunch(String),
    /// The decoded structure violates a trace invariant
    /// ([`KernelTrace::validate`]).
    Invalid(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => f.write_str("not a gpumech trace (bad magic)"),
            DecodeError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            DecodeError::Truncated => f.write_str("trace data truncated"),
            DecodeError::BadKind(t) => write!(f, "unknown instruction kind tag {t}"),
            DecodeError::BadString => f.write_str("invalid UTF-8 in trace"),
            DecodeError::BadLaunch(e) => write!(f, "invalid launch geometry: {e}"),
            DecodeError::Invalid(e) => write!(f, "decoded trace is invalid: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {}

// --- varint primitives ----------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos).ok_or(DecodeError::Truncated)?;
        *pos += 1;
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(DecodeError::Truncated);
        }
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// --- instruction kind tags -------------------------------------------------

fn kind_tag(kind: InstKind) -> u8 {
    match kind {
        InstKind::IntAlu => 0,
        InstKind::FpAdd => 1,
        InstKind::FpMul => 2,
        InstKind::FpFma => 3,
        InstKind::FpDiv => 4,
        InstKind::Sfu => 5,
        InstKind::Load(MemSpace::Global) => 6,
        InstKind::Load(MemSpace::Shared) => 7,
        InstKind::Store(MemSpace::Global) => 8,
        InstKind::Store(MemSpace::Shared) => 9,
        InstKind::Branch => 10,
        InstKind::Sync => 11,
        InstKind::Exit => 12,
    }
}

fn tag_kind(tag: u8) -> Result<InstKind, DecodeError> {
    Ok(match tag {
        0 => InstKind::IntAlu,
        1 => InstKind::FpAdd,
        2 => InstKind::FpMul,
        3 => InstKind::FpFma,
        4 => InstKind::FpDiv,
        5 => InstKind::Sfu,
        6 => InstKind::Load(MemSpace::Global),
        7 => InstKind::Load(MemSpace::Shared),
        8 => InstKind::Store(MemSpace::Global),
        9 => InstKind::Store(MemSpace::Shared),
        10 => InstKind::Branch,
        11 => InstKind::Sync,
        12 => InstKind::Exit,
        t => return Err(DecodeError::BadKind(t)),
    })
}

// --- encode -----------------------------------------------------------------

/// Serializes a trace to the compact binary format.
#[must_use]
pub fn encode(trace: &KernelTrace) -> Vec<u8> {
    // Rough pre-size: ~6 bytes per instruction plus addresses.
    let mut out = Vec::with_capacity(32 + trace.total_insts() * 8);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    put_varint(&mut out, trace.name.len() as u64);
    out.extend_from_slice(trace.name.as_bytes());
    put_varint(&mut out, trace.launch.threads_per_block as u64);
    put_varint(&mut out, trace.launch.num_blocks as u64);
    put_varint(&mut out, trace.warps.len() as u64);

    for warp in &trace.warps {
        put_varint(&mut out, warp.insts.len() as u64);
        for inst in &warp.insts {
            put_varint(&mut out, u64::from(inst.pc));
            out.push(kind_tag(inst.kind));
            put_varint(&mut out, inst.deps.len() as u64);
            // Deps are sorted ascending: delta-code them. Wrapping keeps the
            // encoder total on corrupt (unsorted) inputs; the decoder's
            // wrapping add inverts it exactly either way.
            let mut prev = 0u64;
            for &d in &inst.deps {
                put_varint(&mut out, u64::from(d).wrapping_sub(prev));
                prev = u64::from(d);
            }
            out.extend_from_slice(&inst.active_mask.to_le_bytes());
            put_varint(&mut out, inst.addrs.len() as u64);
            // Addresses are usually strided: zigzag-delta-code them.
            let mut prev = 0i64;
            for &a in &inst.addrs {
                let cur = a as i64;
                put_varint(&mut out, zigzag(cur.wrapping_sub(prev)));
                prev = cur;
            }
        }
    }
    out
}

// --- decode -----------------------------------------------------------------

/// Bounds a claimed element count by what the remaining buffer could
/// possibly hold (every element costs at least one byte), so a corrupt
/// length prefix cannot trigger a huge up-front allocation.
fn capped_capacity(claimed: usize, buf: &[u8], pos: usize) -> usize {
    claimed.min(buf.len().saturating_sub(pos))
}

/// Deserializes a trace from the compact binary format and validates the
/// result with [`KernelTrace::validate`], so arbitrary (fuzzed, truncated,
/// bit-flipped) input yields a typed error — never a panic, an unbounded
/// allocation, or a structurally broken trace.
///
/// # Errors
///
/// Returns a [`DecodeError`] describing the first structural problem.
pub fn decode(buf: &[u8]) -> Result<KernelTrace, DecodeError> {
    let mut pos = 0usize;
    if buf.len() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    pos += MAGIC.len();
    let version = *buf.get(pos).ok_or(DecodeError::Truncated)?;
    pos += 1;
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let name_len = get_varint(buf, &mut pos)? as usize;
    let name_end = pos.checked_add(name_len).ok_or(DecodeError::Truncated)?;
    let name_bytes = buf.get(pos..name_end).ok_or(DecodeError::Truncated)?;
    let name = std::str::from_utf8(name_bytes).map_err(|_| DecodeError::BadString)?.to_string();
    pos = name_end;

    let threads_per_block = get_varint(buf, &mut pos)? as usize;
    let num_blocks = get_varint(buf, &mut pos)? as usize;
    let launch =
        LaunchConfig::try_new(threads_per_block, num_blocks).map_err(DecodeError::BadLaunch)?;
    let num_warps = get_varint(buf, &mut pos)? as usize;

    let mut warps = Vec::with_capacity(capped_capacity(num_warps, buf, pos));
    for w in 0..num_warps {
        let n_insts = get_varint(buf, &mut pos)? as usize;
        let mut insts = Vec::with_capacity(capped_capacity(n_insts, buf, pos));
        for _ in 0..n_insts {
            let pc = get_varint(buf, &mut pos)? as u32;
            let tag = *buf.get(pos).ok_or(DecodeError::Truncated)?;
            pos += 1;
            let kind = tag_kind(tag)?;
            let n_deps = get_varint(buf, &mut pos)? as usize;
            let mut deps = Vec::with_capacity(capped_capacity(n_deps, buf, pos));
            let mut prev = 0u64;
            for _ in 0..n_deps {
                prev = prev.wrapping_add(get_varint(buf, &mut pos)?);
                deps.push(prev as u32);
            }
            let mask_end = pos.checked_add(4).ok_or(DecodeError::Truncated)?;
            let mask_bytes: [u8; 4] = buf
                .get(pos..mask_end)
                .and_then(|s| s.try_into().ok())
                .ok_or(DecodeError::Truncated)?;
            let active_mask = u32::from_le_bytes(mask_bytes);
            pos = mask_end;
            let n_addrs = get_varint(buf, &mut pos)? as usize;
            let mut addrs = Vec::with_capacity(capped_capacity(n_addrs, buf, pos));
            let mut prev = 0i64;
            for _ in 0..n_addrs {
                prev = prev.wrapping_add(unzigzag(get_varint(buf, &mut pos)?));
                addrs.push(prev as u64);
            }
            insts.push(TraceInst { pc, kind, deps, active_mask, addrs });
        }
        let warp_id = WarpId::new(w as u32);
        warps.push(WarpTrace {
            warp: warp_id,
            block: BlockId::new((w / launch.warps_per_block()) as u32),
            insts,
        });
    }
    let trace = KernelTrace { name, launch, warps };
    trace.validate().map_err(|e| DecodeError::Invalid(e.to_string()))?;
    Ok(trace)
}

/// Serializes a trace to JSON (the interchange format; ~20x larger than
/// [`encode`] but human-readable and diffable).
///
/// # Errors
///
/// Propagates serialization errors.
pub fn to_json(trace: &KernelTrace) -> Result<String, serde_json::Error> {
    serde_json::to_string(trace)
}

/// Parses a trace from JSON and validates its structural invariants, so a
/// hand-edited or corrupted file surfaces as a typed error instead of a
/// panic deep inside a model.
///
/// # Errors
///
/// Returns [`TraceError::CorruptTrace`] on parse failure or any violated
/// invariant.
pub fn from_json(json: &str) -> Result<KernelTrace, TraceError> {
    let trace: KernelTrace = serde_json::from_str(json).map_err(|e| TraceError::CorruptTrace {
        kernel: String::new(),
        warp: None,
        detail: format!("JSON parse error: {e}"),
    })?;
    trace.validate()?;
    Ok(trace)
}

/// Writes a trace to `path` in the binary format.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save(trace: &KernelTrace, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, encode(trace))
}

/// Reads a trace from `path`.
///
/// # Errors
///
/// Propagates I/O errors; decoding failures surface as
/// [`std::io::ErrorKind::InvalidData`].
pub fn load(path: &std::path::Path) -> std::io::Result<KernelTrace> {
    let bytes = std::fs::read(path)?;
    decode(&bytes).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn kind_tags_roundtrip() {
        for tag in 0u8..13 {
            let kind = tag_kind(tag).unwrap();
            assert_eq!(kind_tag(kind), tag);
        }
        assert_eq!(tag_kind(13), Err(DecodeError::BadKind(13)));
    }

    #[test]
    fn traces_roundtrip_exactly() {
        for name in ["sdk_vectoradd", "kmeans_invert_mapping", "lud_diagonal"] {
            let trace = workloads::by_name(name).unwrap().with_blocks(2).trace().unwrap();
            let bytes = encode(&trace);
            let back = decode(&bytes).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(trace, back, "{name} roundtrip");
        }
    }

    #[test]
    fn binary_is_much_smaller_than_json() {
        let trace = workloads::by_name("cfd_compute_flux").unwrap().with_blocks(4).trace().unwrap();
        let bin = encode(&trace).len();
        let json = serde_json::to_string(&trace).unwrap().len();
        assert!(
            bin * 5 < json,
            "binary {bin} bytes should be at least 5x smaller than JSON {json}"
        );
    }

    #[test]
    fn corrupt_input_is_rejected_not_panicking() {
        assert_eq!(decode(b"oops"), Err(DecodeError::BadMagic));
        let trace = workloads::by_name("sdk_vectoradd").unwrap().with_blocks(1).trace().unwrap();
        let mut bytes = encode(&trace);
        bytes[8] = 99; // version byte
        assert_eq!(decode(&bytes), Err(DecodeError::BadVersion(99)));
        let trace_bytes = encode(&trace);
        for cut in [9, 16, trace_bytes.len() / 2] {
            // Truncations must error (any variant), never panic.
            let _ = decode(&trace_bytes[..cut]);
        }
    }

    /// Deterministic corruption fan over the binary format: flip one
    /// seeded byte per case and decode. Every case must yield either a
    /// typed [`DecodeError`] or a trace that passed validation — reaching
    /// the end of the loop proves no case panicked.
    #[test]
    fn binary_byte_flip_fan_yields_typed_errors_never_panics() {
        let trace = workloads::by_name("sdk_vectoradd").unwrap().with_blocks(2).trace().unwrap();
        let bytes = encode(&trace);
        let outcome = |seed: u64| {
            let r = crate::splitmix64(seed);
            let pos = (r as usize) % bytes.len();
            let flip = ((r >> 32) as u8) | 1; // never a zero xor (always a real change)
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= flip;
            match decode(&corrupt) {
                Ok(t) => {
                    // A flip the format cannot distinguish from valid data
                    // must still satisfy every structural invariant.
                    t.validate().unwrap_or_else(|e| panic!("seed {seed}: invalid decode: {e}"));
                    "ok"
                }
                Err(_) => "typed",
            }
        };
        let first: Vec<_> = (0..128).map(outcome).collect();
        let second: Vec<_> = (0..128).map(outcome).collect();
        assert_eq!(first, second, "byte-flip outcomes are not deterministic");
        assert!(first.contains(&"typed"), "no flip was rejected; the fan is toothless");
    }

    /// The same fan over the JSON path: corrupt one seeded character and
    /// re-load. [`from_json`] must return a typed [`TraceError`] or a
    /// validated trace, never panic.
    #[test]
    fn json_corruption_fan_yields_typed_errors_never_panics() {
        let trace = workloads::by_name("sdk_transpose").unwrap().with_blocks(1).trace().unwrap();
        let json = to_json(&trace).unwrap();
        let bytes = json.as_bytes();
        let mut typed = 0;
        for seed in 0..128u64 {
            let r = crate::splitmix64(seed ^ 0xA5A5_5A5A);
            let pos = (r as usize) % bytes.len();
            // Substitute a printable ASCII character so the corrupt input
            // is still a valid string (exercises the parser, not UTF-8).
            let sub = b' ' + ((r >> 32) % 94) as u8;
            let mut corrupt = bytes.to_vec();
            corrupt[pos] = sub;
            let s = String::from_utf8(corrupt).unwrap();
            match from_json(&s) {
                Ok(t) => t.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}")),
                Err(_) => typed += 1,
            }
        }
        assert!(typed > 0, "no substitution was rejected; the fan is toothless");
    }

    #[test]
    fn save_and_load_via_files() {
        let dir = std::env::temp_dir().join("gpumech_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trace");
        let trace = workloads::by_name("sdk_transpose").unwrap().with_blocks(1).trace().unwrap();
        save(&trace, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(trace, back);
        std::fs::remove_file(&path).ok();
    }
}
