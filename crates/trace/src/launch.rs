//! Kernel launch geometry: grid and block dimensions, warp numbering, and
//! the block-to-core assignment rule shared by the functional cache
//! simulator and the cycle-level oracle.

use gpumech_isa::{BlockId, CoreId, WarpId, WARP_SIZE};
use serde::{Deserialize, Serialize};

/// Grid geometry of one kernel launch (1-D, as in all the paper's kernels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Threads per block; must be a non-zero multiple of the 32-thread warp.
    pub threads_per_block: usize,
    /// Number of thread blocks in the grid.
    pub num_blocks: usize,
}

impl LaunchConfig {
    /// Creates a launch configuration.
    ///
    /// # Panics
    ///
    /// Panics if `threads_per_block` is zero or not a multiple of 32, or if
    /// `num_blocks` is zero.
    #[must_use]
    pub fn new(threads_per_block: usize, num_blocks: usize) -> Self {
        assert!(
            threads_per_block > 0 && threads_per_block.is_multiple_of(WARP_SIZE),
            "threads_per_block must be a non-zero multiple of {WARP_SIZE}"
        );
        assert!(num_blocks > 0, "num_blocks must be non-zero");
        Self { threads_per_block, num_blocks }
    }

    /// Fallible [`LaunchConfig::new`] for untrusted inputs (deserialized
    /// traces): returns a description of the violated constraint instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns an error if `threads_per_block` is zero or not a multiple of
    /// 32, if `num_blocks` is zero, or if the grid exceeds [`Self::MAX_WARPS`]
    /// total warps.
    pub fn try_new(threads_per_block: usize, num_blocks: usize) -> Result<Self, String> {
        if threads_per_block == 0 || !threads_per_block.is_multiple_of(WARP_SIZE) {
            return Err(format!(
                "threads_per_block ({threads_per_block}) must be a non-zero multiple of {WARP_SIZE}"
            ));
        }
        if num_blocks == 0 {
            return Err("num_blocks must be non-zero".to_string());
        }
        let warps = (threads_per_block / WARP_SIZE).checked_mul(num_blocks);
        match warps {
            Some(w) if w <= Self::MAX_WARPS => Ok(Self { threads_per_block, num_blocks }),
            _ => Err(format!(
                "grid of {threads_per_block}x{num_blocks} threads exceeds {} total warps",
                Self::MAX_WARPS
            )),
        }
    }

    /// Largest grid (in warps) accepted from untrusted inputs.
    pub const MAX_WARPS: usize = 1 << 24;

    /// Warps per thread block.
    #[must_use]
    pub fn warps_per_block(&self) -> usize {
        self.threads_per_block / WARP_SIZE
    }

    /// Total warps in the grid.
    #[must_use]
    pub fn total_warps(&self) -> usize {
        self.warps_per_block() * self.num_blocks
    }

    /// Total threads in the grid.
    #[must_use]
    pub fn total_threads(&self) -> usize {
        self.threads_per_block * self.num_blocks
    }

    /// The block containing a grid-global warp.
    #[must_use]
    pub fn block_of_warp(&self, warp: WarpId) -> BlockId {
        BlockId::new((warp.index() / self.warps_per_block()) as u32)
    }

    /// Warp index within its block.
    #[must_use]
    pub fn warp_in_block(&self, warp: WarpId) -> usize {
        warp.index() % self.warps_per_block()
    }

    /// Grid-global thread id of `lane` of `warp`.
    #[must_use]
    pub fn global_tid(&self, warp: WarpId, lane: usize) -> u64 {
        (warp.index() * WARP_SIZE + lane) as u64
    }

    /// Core that executes a block: blocks are dealt round-robin across
    /// cores, so block `b` runs on core `b % num_cores`. Both the functional
    /// cache simulator and the timing oracle follow this rule, keeping their
    /// per-core access streams comparable.
    #[must_use]
    pub fn core_of_block(&self, block: BlockId, num_cores: usize) -> CoreId {
        CoreId::new((block.index() % num_cores) as u32)
    }

    /// Core that executes a warp (via its block).
    #[must_use]
    pub fn core_of_warp(&self, warp: WarpId, num_cores: usize) -> CoreId {
        self.core_of_block(self.block_of_warp(warp), num_cores)
    }

    /// Number of blocks that fit on one core given a resident-warp budget.
    /// At least one block is always resident, mirroring real hardware which
    /// cannot split a block.
    #[must_use]
    pub fn blocks_per_core(&self, max_warps_per_core: usize) -> usize {
        (max_warps_per_core / self.warps_per_block()).max(1)
    }

    /// Iterator over all warp ids in the grid.
    pub fn warps(&self) -> impl Iterator<Item = WarpId> {
        (0..self.total_warps() as u32).map(WarpId::new)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn geometry_derivations() {
        let l = LaunchConfig::new(256, 192);
        assert_eq!(l.warps_per_block(), 8);
        assert_eq!(l.total_warps(), 1536);
        assert_eq!(l.total_threads(), 49152);
        assert_eq!(l.block_of_warp(WarpId::new(9)), BlockId::new(1));
        assert_eq!(l.warp_in_block(WarpId::new(9)), 1);
        assert_eq!(l.global_tid(WarpId::new(2), 5), 69);
    }

    #[test]
    fn blocks_deal_round_robin_to_cores() {
        let l = LaunchConfig::new(256, 40);
        assert_eq!(l.core_of_block(BlockId::new(0), 16), CoreId::new(0));
        assert_eq!(l.core_of_block(BlockId::new(16), 16), CoreId::new(0));
        assert_eq!(l.core_of_block(BlockId::new(17), 16), CoreId::new(1));
        assert_eq!(l.core_of_warp(WarpId::new(8), 16), CoreId::new(1));
    }

    #[test]
    fn blocks_per_core_respects_warp_budget() {
        let l = LaunchConfig::new(256, 10); // 8 warps/block
        assert_eq!(l.blocks_per_core(32), 4);
        assert_eq!(l.blocks_per_core(8), 1);
        // A block never splits: even a 4-warp budget holds one 8-warp block.
        assert_eq!(l.blocks_per_core(4), 1);
        assert_eq!(l.blocks_per_core(48), 6);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn rejects_non_warp_multiple() {
        let _ = LaunchConfig::new(100, 1);
    }

    #[test]
    fn warp_iterator_covers_grid() {
        let l = LaunchConfig::new(64, 3);
        let warps: Vec<_> = l.warps().collect();
        assert_eq!(warps.len(), 6);
        assert_eq!(warps[0], WarpId::new(0));
        assert_eq!(warps[5], WarpId::new(5));
    }
}
