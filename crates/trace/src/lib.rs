//! SIMT functional simulation and per-warp trace generation.
//!
//! This crate plays the role of GPUOcelot in the paper's input collector
//! (Section V): it executes a [`gpumech_isa::Kernel`] functionally — no
//! timing — and emits, for every warp, the dynamic instruction trace tagged
//! with register-dependency information and per-lane memory addresses. Those
//! traces are the *only* interface between workloads and the rest of the
//! stack: the cache model, the interval model, and the cycle-level oracle
//! all consume [`KernelTrace`]s.
//!
//! It also bundles the [`workloads`] library: 40 synthetic kernels that
//! stand in for the Rodinia 2.1 / Parboil 2.5 / NVIDIA SDK kernels of the
//! paper's evaluation, spanning the full space of memory divergence, cache
//! locality, write traffic, control divergence, and compute intensity.
//!
//! # Example
//!
//! ```
//! use gpumech_trace::{trace_kernel, LaunchConfig};
//! use gpumech_isa::{KernelBuilder, Operand, ValueOp, MemSpace, AddrPattern};
//!
//! let mut b = KernelBuilder::new("demo");
//! let x = b.load_pattern(AddrPattern::Coalesced { base: 0x1000_0000, elem_bytes: 4 });
//! let _ = b.fp_add(&[Operand::Reg(x), Operand::Imm(1)]);
//! let kernel = b.finish(vec![]);
//!
//! let launch = LaunchConfig::new(64, 4); // 64 threads/block, 4 blocks
//! let trace = trace_kernel(&kernel, launch)?;
//! assert_eq!(trace.warps.len(), 8);
//! assert!(trace.warps[0].insts.len() >= 4);
//! # Ok::<(), gpumech_trace::TraceError>(())
//! ```

pub mod engine;
pub mod io;
pub mod launch;
pub mod record;
pub mod workloads;

pub use engine::{
    trace_kernel, trace_kernel_cancellable, trace_kernel_opts, trace_warp, TraceError,
    TraceOptions, MAX_DYN_INSTS_PER_WARP,
};
pub use launch::LaunchConfig;
pub use record::{KernelTrace, TraceInst, WarpTrace};
pub use workloads::{DivergenceClass, Suite, Workload};

/// Deterministic 64-bit mixer (SplitMix64 finalizer). Used for synthetic
/// memory contents and the `Hash` value op, so every trace is reproducible.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixes() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Single-bit input changes flip roughly half the output bits.
        let d = (splitmix64(42) ^ splitmix64(43)).count_ones();
        assert!((16..=48).contains(&d), "poor mixing: {d} bits");
    }
}
