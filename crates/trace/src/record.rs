//! Dynamic trace records: the interface between the functional simulator
//! and every downstream consumer (cache model, interval model, oracle).

use gpumech_isa::{BlockId, InstKind, WarpId, WARP_SIZE};
use serde::{Deserialize, Serialize};

use crate::engine::TraceError;
use crate::launch::LaunchConfig;

/// One dynamically executed warp-instruction.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceInst {
    /// Static PC (index into the kernel's instruction array).
    pub pc: u32,
    /// Latency class.
    pub kind: InstKind,
    /// Indices (into the owning [`WarpTrace::insts`]) of the instructions
    /// that produced this instruction's register sources. Deduplicated and
    /// sorted; empty for instructions with no register inputs.
    pub deps: Vec<u32>,
    /// Bitmask of active lanes.
    pub active_mask: u32,
    /// Per-active-lane byte addresses for memory instructions, in ascending
    /// lane order. Empty for non-memory instructions.
    pub addrs: Vec<u64>,
}

impl TraceInst {
    /// Number of active lanes.
    #[must_use]
    pub fn active_lanes(&self) -> u32 {
        self.active_mask.count_ones()
    }
}

/// The full dynamic trace of one warp.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WarpTrace {
    /// Grid-global warp id.
    pub warp: WarpId,
    /// Owning thread block.
    pub block: BlockId,
    /// Executed instructions in program order.
    pub insts: Vec<TraceInst>,
}

impl WarpTrace {
    /// Number of dynamic instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` if the warp executed nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Count of dynamic global-memory instructions.
    #[must_use]
    pub fn global_mem_insts(&self) -> usize {
        self.insts.iter().filter(|i| i.kind.is_global_mem()).count()
    }
}

/// The traces of every warp of a kernel launch.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KernelTrace {
    /// Kernel name (copied from the kernel definition).
    pub name: String,
    /// Launch geometry that produced the trace.
    pub launch: LaunchConfig,
    /// Per-warp traces, indexed by grid-global warp id.
    pub warps: Vec<WarpTrace>,
}

impl KernelTrace {
    /// Total dynamic warp-instructions across all warps.
    #[must_use]
    pub fn total_insts(&self) -> usize {
        self.warps.iter().map(WarpTrace::len).sum()
    }

    /// Total dynamic global-memory instructions across all warps.
    #[must_use]
    pub fn total_global_mem_insts(&self) -> usize {
        self.warps.iter().map(WarpTrace::global_mem_insts).sum()
    }

    /// Checks the structural invariants every downstream consumer (cache
    /// model, interval algorithm, timing oracle) relies on. Traces produced
    /// by the tracer satisfy them by construction; deserialized or mutated
    /// traces must pass here before being simulated, or indexing panics
    /// would be reachable from untrusted input.
    ///
    /// Invariants: the launch geometry is well-formed, the warp count
    /// matches the grid, every warp is non-empty with consistent warp/block
    /// ids, dependency indices are strictly ascending and refer only to
    /// earlier instructions, active masks are non-zero, and address lists
    /// are consistent with the instruction kind and active-lane count.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::CorruptTrace`] naming the offending warp and
    /// the violated invariant.
    pub fn validate(&self) -> Result<(), TraceError> {
        let corrupt = |warp: Option<usize>, detail: String| TraceError::CorruptTrace {
            kernel: self.name.clone(),
            warp,
            detail,
        };
        let launch =
            LaunchConfig::try_new(self.launch.threads_per_block, self.launch.num_blocks)
                .map_err(|e| corrupt(None, format!("invalid launch geometry: {e}")))?;
        if self.warps.len() != launch.total_warps() {
            return Err(corrupt(
                None,
                format!(
                    "trace has {} warps but the launch geometry implies {}",
                    self.warps.len(),
                    launch.total_warps()
                ),
            ));
        }
        for (i, w) in self.warps.iter().enumerate() {
            if w.insts.is_empty() {
                return Err(corrupt(Some(i), "warp executed no instructions".to_string()));
            }
            if w.warp.index() != i {
                return Err(corrupt(
                    Some(i),
                    format!("warp id {} stored at grid index {i}", w.warp.index()),
                ));
            }
            if w.block != launch.block_of_warp(w.warp) {
                return Err(corrupt(
                    Some(i),
                    format!(
                        "block id {} inconsistent with launch geometry (expected {})",
                        w.block.index(),
                        launch.block_of_warp(w.warp).index()
                    ),
                ));
            }
            for (k, inst) in w.insts.iter().enumerate() {
                let mut prev: Option<u32> = None;
                for &d in &inst.deps {
                    if d as usize >= k {
                        return Err(corrupt(
                            Some(i),
                            format!(
                                "instruction {k} (pc {}) depends on instruction {d}, which is \
                                 not earlier in the warp",
                                inst.pc
                            ),
                        ));
                    }
                    if prev.is_some_and(|p| p >= d) {
                        return Err(corrupt(
                            Some(i),
                            format!(
                                "instruction {k} (pc {}) has unsorted or duplicate \
                                 dependencies",
                                inst.pc
                            ),
                        ));
                    }
                    prev = Some(d);
                }
                if inst.active_mask == 0 {
                    return Err(corrupt(
                        Some(i),
                        format!("instruction {k} (pc {}) has an empty active mask", inst.pc),
                    ));
                }
                let expected_addrs =
                    if inst.kind.is_mem() { inst.active_lanes() as usize } else { 0 };
                if inst.addrs.len() != expected_addrs || inst.addrs.len() > WARP_SIZE {
                    return Err(corrupt(
                        Some(i),
                        format!(
                            "instruction {k} (pc {}) records {} addresses but its kind and \
                             active mask imply {expected_addrs}",
                            inst.pc,
                            inst.addrs.len()
                        ),
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use gpumech_isa::MemSpace;

    fn inst(kind: InstKind, mask: u32) -> TraceInst {
        TraceInst { pc: 0, kind, deps: vec![], active_mask: mask, addrs: vec![] }
    }

    #[test]
    fn active_lane_count() {
        assert_eq!(inst(InstKind::IntAlu, 0xFFFF_FFFF).active_lanes(), 32);
        assert_eq!(inst(InstKind::IntAlu, 0b1011).active_lanes(), 3);
    }

    #[test]
    fn trace_counters() {
        let wt = WarpTrace {
            warp: WarpId::new(0),
            block: BlockId::new(0),
            insts: vec![
                inst(InstKind::IntAlu, 1),
                inst(InstKind::Load(MemSpace::Global), 1),
                inst(InstKind::Load(MemSpace::Shared), 1),
                inst(InstKind::Store(MemSpace::Global), 1),
            ],
        };
        assert_eq!(wt.len(), 4);
        assert!(!wt.is_empty());
        assert_eq!(wt.global_mem_insts(), 2);
        let kt = KernelTrace {
            name: "k".into(),
            launch: LaunchConfig::new(32, 1),
            warps: vec![wt.clone(), wt],
        };
        assert_eq!(kt.total_insts(), 8);
        assert_eq!(kt.total_global_mem_insts(), 4);
    }
}
