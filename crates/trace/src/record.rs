//! Dynamic trace records: the interface between the functional simulator
//! and every downstream consumer (cache model, interval model, oracle).

use gpumech_isa::{BlockId, InstKind, WarpId};
use serde::{Deserialize, Serialize};

use crate::launch::LaunchConfig;

/// One dynamically executed warp-instruction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceInst {
    /// Static PC (index into the kernel's instruction array).
    pub pc: u32,
    /// Latency class.
    pub kind: InstKind,
    /// Indices (into the owning [`WarpTrace::insts`]) of the instructions
    /// that produced this instruction's register sources. Deduplicated and
    /// sorted; empty for instructions with no register inputs.
    pub deps: Vec<u32>,
    /// Bitmask of active lanes.
    pub active_mask: u32,
    /// Per-active-lane byte addresses for memory instructions, in ascending
    /// lane order. Empty for non-memory instructions.
    pub addrs: Vec<u64>,
}

impl TraceInst {
    /// Number of active lanes.
    #[must_use]
    pub fn active_lanes(&self) -> u32 {
        self.active_mask.count_ones()
    }
}

/// The full dynamic trace of one warp.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarpTrace {
    /// Grid-global warp id.
    pub warp: WarpId,
    /// Owning thread block.
    pub block: BlockId,
    /// Executed instructions in program order.
    pub insts: Vec<TraceInst>,
}

impl WarpTrace {
    /// Number of dynamic instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` if the warp executed nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Count of dynamic global-memory instructions.
    #[must_use]
    pub fn global_mem_insts(&self) -> usize {
        self.insts.iter().filter(|i| i.kind.is_global_mem()).count()
    }
}

/// The traces of every warp of a kernel launch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelTrace {
    /// Kernel name (copied from the kernel definition).
    pub name: String,
    /// Launch geometry that produced the trace.
    pub launch: LaunchConfig,
    /// Per-warp traces, indexed by grid-global warp id.
    pub warps: Vec<WarpTrace>,
}

impl KernelTrace {
    /// Total dynamic warp-instructions across all warps.
    #[must_use]
    pub fn total_insts(&self) -> usize {
        self.warps.iter().map(WarpTrace::len).sum()
    }

    /// Total dynamic global-memory instructions across all warps.
    #[must_use]
    pub fn total_global_mem_insts(&self) -> usize {
        self.warps.iter().map(WarpTrace::global_mem_insts).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpumech_isa::MemSpace;

    fn inst(kind: InstKind, mask: u32) -> TraceInst {
        TraceInst { pc: 0, kind, deps: vec![], active_mask: mask, addrs: vec![] }
    }

    #[test]
    fn active_lane_count() {
        assert_eq!(inst(InstKind::IntAlu, 0xFFFF_FFFF).active_lanes(), 32);
        assert_eq!(inst(InstKind::IntAlu, 0b1011).active_lanes(), 3);
    }

    #[test]
    fn trace_counters() {
        let wt = WarpTrace {
            warp: WarpId::new(0),
            block: BlockId::new(0),
            insts: vec![
                inst(InstKind::IntAlu, 1),
                inst(InstKind::Load(MemSpace::Global), 1),
                inst(InstKind::Load(MemSpace::Shared), 1),
                inst(InstKind::Store(MemSpace::Global), 1),
            ],
        };
        assert_eq!(wt.len(), 4);
        assert!(!wt.is_empty());
        assert_eq!(wt.global_mem_insts(), 2);
        let kt = KernelTrace {
            name: "k".into(),
            launch: LaunchConfig::new(32, 1),
            warps: vec![wt.clone(), wt],
        };
        assert_eq!(kt.total_insts(), 8);
        assert_eq!(kt.total_global_mem_insts(), 4);
    }
}
