//! The synthetic workload library.
//!
//! The paper evaluates 40 kernels from Rodinia 2.1, Parboil 2.5, and the
//! NVIDIA SDK. Those kernels (and the GPUOcelot toolchain that executed
//! them) are not available here, so this module provides 40 synthetic
//! analogues written in the kernel IR. Each analogue is *engineered to
//! reproduce the behaviour axis* that makes its namesake interesting to the
//! model — degree of memory divergence (coalesced / medium / maximal),
//! cache locality (L1-hot, L2-hot, streaming), write traffic, control
//! divergence (warp-correlated and lane-level), dependence distance, and
//! compute intensity — rather than its exact arithmetic. The mapping is
//! documented on each constructor.
//!
//! Workloads are deterministic: the same workload always produces the same
//! trace.

use gpumech_isa::{AddrPattern, Kernel, KernelBuilder, MemSpace, Operand, Reg, ValueOp};
use serde::{Deserialize, Serialize};

use crate::engine::{trace_kernel, TraceError};
use crate::launch::LaunchConfig;
use crate::record::KernelTrace;
#[cfg(test)]
use crate::record::WarpTrace;

/// Benchmark suite a workload's namesake belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// Rodinia 2.1.
    Rodinia,
    /// Parboil 2.5.
    Parboil,
    /// NVIDIA SDK samples.
    NvidiaSdk,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suite::Rodinia => f.write_str("rodinia"),
            Suite::Parboil => f.write_str("parboil"),
            Suite::NvidiaSdk => f.write_str("sdk"),
        }
    }
}

/// Coarse memory-divergence class (requests per 32-lane memory instruction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DivergenceClass {
    /// ~1 request per warp memory instruction.
    Coalesced,
    /// Up to ~16 requests.
    Medium,
    /// Up to 32 requests.
    High,
}

/// A named kernel plus its launch geometry and behaviour tags.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Workload name (`suite_kernel` style, mirroring the paper).
    pub name: String,
    /// Originating suite of the namesake kernel.
    pub suite: Suite,
    /// Memory-divergence class the workload is engineered for.
    pub divergence: DivergenceClass,
    /// `true` if warps follow meaningfully different control-flow paths —
    /// the subset used for the representative-warp study (Figure 7).
    pub control_divergent: bool,
    /// The kernel body.
    pub kernel: Kernel,
    /// Launch geometry (paper: at least 3x system occupancy).
    pub launch: LaunchConfig,
    /// One-line description of the behaviour being mimicked.
    pub description: String,
}

impl Workload {
    /// Functionally executes the workload and returns its per-warp traces.
    ///
    /// # Errors
    ///
    /// Propagates [`TraceError`] from the functional simulator.
    pub fn trace(&self) -> Result<KernelTrace, TraceError> {
        trace_kernel(&self.kernel, self.launch)
    }

    /// [`Workload::trace`] under a [`gpumech_obs::CancelToken`] — aborts
    /// with [`TraceError::Interrupted`] once the token fires.
    ///
    /// # Errors
    ///
    /// Propagates [`TraceError`] from the functional simulator.
    pub fn trace_cancellable(
        &self,
        cancel: &gpumech_obs::CancelToken,
    ) -> Result<KernelTrace, TraceError> {
        crate::trace_kernel_cancellable(
            &self.kernel,
            self.launch,
            crate::TraceOptions::default(),
            cancel,
        )
    }

    /// Returns a copy with a different block count (used by fast tests and
    /// by sweeps that shrink the grid).
    #[must_use]
    pub fn with_blocks(mut self, num_blocks: usize) -> Self {
        self.launch = LaunchConfig::new(self.launch.threads_per_block, num_blocks);
        self
    }
}

/// Default grid: 256 threads (8 warps) per block, 192 blocks = 1536 warps —
/// 3x the occupancy of the Table I machine (16 cores x 32 warps), matching
/// the paper's "at least 3x system occupancy" requirement.
const DEFAULT_LAUNCH: (usize, usize) = (256, 192);

fn default_launch() -> LaunchConfig {
    LaunchConfig::new(DEFAULT_LAUNCH.0, DEFAULT_LAUNCH.1)
}

/// Distinct 4 GiB address region per array index, so workloads never alias.
fn region(idx: u64) -> u64 {
    (idx + 1) << 32
}

// ---------------------------------------------------------------------------
// Generator helpers
// ---------------------------------------------------------------------------

/// Emits `n` dependent FMAs rooted at `seed`, returning the chain head.
fn fma_chain(b: &mut KernelBuilder, seed: Reg, n: usize) -> Reg {
    let mut acc = seed;
    for _ in 0..n {
        acc = b.fp_fma(&[Operand::Reg(acc), Operand::Imm(3), Operand::Imm(1)]);
    }
    acc
}

/// Emits `n` *independent* FP adds all consuming `seed` (ILP, no chain).
fn independent_fp(b: &mut KernelBuilder, seed: Reg, n: usize) {
    for i in 0..n {
        let _ = b.fp_add(&[Operand::Reg(seed), Operand::Imm(i as u64)]);
    }
}

struct Gen;

impl Gen {
    /// Coalesced streaming: per loop trip, `loads` coalesced loads feed an
    /// FMA chain and `stores` coalesced stores. No reuse → every line is a
    /// cold L2 miss → DRAM-bound, perfectly coalesced (cfd_step_factor
    /// shape).
    fn streaming(name: &str, trips: u64, loads: usize, stores: usize, fma: usize) -> Kernel {
        let mut b = KernelBuilder::new(name);
        let elem = 4u64;
        let off = b.alu(ValueOp::Mul, &[Operand::Tid, Operand::Imm(elem)]);
        let i = b.alu(ValueOp::Mov, &[Operand::Imm(0)]);
        // Per-trip address advance: the whole grid moves to a fresh chunk.
        let chunk = 64 * 1024 * 1024u64;
        b.loop_begin();
        let t = b.alu(ValueOp::Mul, &[Operand::Reg(i), Operand::Imm(chunk)]);
        let mut last = None;
        for l in 0..loads {
            let base = region(l as u64);
            let a0 = b.alu(ValueOp::Add, &[Operand::Reg(off), Operand::Reg(t)]);
            let a = b.alu(ValueOp::Add, &[Operand::Reg(a0), Operand::Imm(base)]);
            let x = b.load(MemSpace::Global, Operand::Reg(a));
            last = Some(fma_chain(&mut b, x, fma));
        }
        let v = last.unwrap_or(off);
        for s in 0..stores {
            let base = region(16 + s as u64);
            let a0 = b.alu(ValueOp::Add, &[Operand::Reg(off), Operand::Reg(t)]);
            let a = b.alu(ValueOp::Add, &[Operand::Reg(a0), Operand::Imm(base)]);
            b.store(MemSpace::Global, Operand::Reg(a), Operand::Reg(v));
        }
        b.alu_into(i, ValueOp::Add, &[Operand::Reg(i), Operand::Imm(1)]);
        let c = b.alu(ValueOp::CmpLt, &[Operand::Reg(i), Operand::Imm(trips)]);
        b.loop_end_while(Operand::Reg(c));
        b.finish(vec![])
    }

    /// Strided accesses: each lane strides by `stride` bytes, producing
    /// `32*stride/128` clamped to `1..=32` requests per instruction
    /// (cfd_compute_flux and srad shapes). `region_bytes` bounds the
    /// footprint to tune L2 locality.
    fn strided(
        name: &str,
        trips: u64,
        stride: u64,
        region_bytes: u64,
        fma: usize,
        with_store: bool,
    ) -> Kernel {
        let mut b = KernelBuilder::new(name);
        let off = b.alu(ValueOp::Mul, &[Operand::Tid, Operand::Imm(stride)]);
        let wrapped = b.alu(ValueOp::Rem, &[Operand::Reg(off), Operand::Imm(region_bytes)]);
        let i = b.alu(ValueOp::Mov, &[Operand::Imm(0)]);
        b.loop_begin();
        let t = b.alu(ValueOp::Mul, &[Operand::Reg(i), Operand::Imm(stride * 67)]);
        let t2 = b.alu(ValueOp::Add, &[Operand::Reg(wrapped), Operand::Reg(t)]);
        let t3 = b.alu(ValueOp::Rem, &[Operand::Reg(t2), Operand::Imm(region_bytes)]);
        let a = b.alu(ValueOp::Add, &[Operand::Reg(t3), Operand::Imm(region(0))]);
        let x = b.load(MemSpace::Global, Operand::Reg(a));
        let v = fma_chain(&mut b, x, fma);
        if with_store {
            let sa = b.alu(ValueOp::Add, &[Operand::Reg(t3), Operand::Imm(region(1))]);
            b.store(MemSpace::Global, Operand::Reg(sa), Operand::Reg(v));
        }
        b.alu_into(i, ValueOp::Add, &[Operand::Reg(i), Operand::Imm(1)]);
        let c = b.alu(ValueOp::CmpLt, &[Operand::Reg(i), Operand::Imm(trips)]);
        b.loop_end_while(Operand::Reg(c));
        b.finish(vec![])
    }

    /// Random gather within `region_bytes`: maximal (32-request) divergence;
    /// the region size controls the hit level (16 KiB → L1-hot, 256 KiB →
    /// L2-hot, 256 MiB → DRAM) (kmeans / streamcluster / bfs shapes).
    fn random_gather(name: &str, trips: u64, region_bytes: u64, fma: usize) -> Kernel {
        let mut b = KernelBuilder::new(name);
        let i = b.alu(ValueOp::Mov, &[Operand::Imm(0)]);
        b.loop_begin();
        let mix = b.alu(ValueOp::Mul, &[Operand::Reg(i), Operand::Imm(0x9E37_79B9)]);
        let h = b.alu(ValueOp::Hash, &[Operand::Tid, Operand::Reg(mix)]);
        let m = b.alu(ValueOp::Rem, &[Operand::Reg(h), Operand::Imm(region_bytes)]);
        let al = b.alu(ValueOp::And, &[Operand::Reg(m), Operand::Imm(!3u64)]);
        let a = b.alu(ValueOp::Add, &[Operand::Reg(al), Operand::Imm(region(0))]);
        let x = b.load(MemSpace::Global, Operand::Reg(a));
        let _ = fma_chain(&mut b, x, fma);
        b.alu_into(i, ValueOp::Add, &[Operand::Reg(i), Operand::Imm(1)]);
        let c = b.alu(ValueOp::CmpLt, &[Operand::Reg(i), Operand::Imm(trips)]);
        b.loop_end_while(Operand::Reg(c));
        b.finish(vec![])
    }

    /// L1-hot divergent loads (with an occasional warp-uniform excursion to
    /// a DRAM-sized region) plus maximally divergent stores into a huge
    /// region: the kmeans_invert_mapping shape — loads mostly hit the L1
    /// (~90%, so MSHRs stay quiet), but the rare cold load queues behind
    /// the divergent write flood on the DRAM bus (the paper's Section VII
    /// analysis of this kernel).
    fn hot_loads_divergent_stores(
        name: &str,
        trips: u64,
        hot_bytes: u64,
        cold_every: u64,
    ) -> Kernel {
        let mut b = KernelBuilder::new(name);
        let wid = b.alu(ValueOp::Div, &[Operand::Tid, Operand::Imm(32)]);
        let i = b.alu(ValueOp::Mov, &[Operand::Imm(0)]);
        b.loop_begin();
        let x = b.fresh_reg();
        // Warp-uniform selector: every `cold_every`-th iteration (hashed per
        // warp) the whole warp gathers from a cold 1 GiB region instead of
        // the hot set.
        let hw = b.alu(ValueOp::Hash, &[Operand::Reg(wid), Operand::Reg(i)]);
        let sel = b.alu(ValueOp::Rem, &[Operand::Reg(hw), Operand::Imm(cold_every.max(1))]);
        let cold = b.alu(ValueOp::CmpEq, &[Operand::Reg(sel), Operand::Imm(0)]);
        b.if_begin(Operand::Reg(cold));
        {
            let h = b.alu(ValueOp::Hash, &[Operand::Tid, Operand::Reg(i), Operand::Imm(5)]);
            let m = b.alu(ValueOp::Rem, &[Operand::Reg(h), Operand::Imm(1u64 << 30)]);
            let al = b.alu(ValueOp::And, &[Operand::Reg(m), Operand::Imm(!3u64)]);
            let a = b.alu(ValueOp::Add, &[Operand::Reg(al), Operand::Imm(region(3))]);
            let xv = b.load(MemSpace::Global, Operand::Reg(a));
            b.alu_into(x, ValueOp::Mov, &[Operand::Reg(xv)]);
        }
        b.if_else();
        {
            let h = b.alu(ValueOp::Hash, &[Operand::Tid, Operand::Reg(i)]);
            let m = b.alu(ValueOp::Rem, &[Operand::Reg(h), Operand::Imm(hot_bytes)]);
            let al = b.alu(ValueOp::And, &[Operand::Reg(m), Operand::Imm(!3u64)]);
            let a = b.alu(ValueOp::Add, &[Operand::Reg(al), Operand::Imm(region(0))]);
            let xv = b.load(MemSpace::Global, Operand::Reg(a));
            b.alu_into(x, ValueOp::Mov, &[Operand::Reg(xv)]);
        }
        b.if_end();
        let v = fma_chain(&mut b, x, 2);
        // Maximally divergent store into a cold 1 GiB region.
        let h2 = b.alu(ValueOp::Hash, &[Operand::Tid, Operand::Reg(i), Operand::Imm(0xABCD)]);
        let m2 = b.alu(ValueOp::Rem, &[Operand::Reg(h2), Operand::Imm(1u64 << 30)]);
        let al2 = b.alu(ValueOp::And, &[Operand::Reg(m2), Operand::Imm(!3u64)]);
        let sa = b.alu(ValueOp::Add, &[Operand::Reg(al2), Operand::Imm(region(1))]);
        b.store(MemSpace::Global, Operand::Reg(sa), Operand::Reg(v));
        b.alu_into(i, ValueOp::Add, &[Operand::Reg(i), Operand::Imm(1)]);
        let c = b.alu(ValueOp::CmpLt, &[Operand::Reg(i), Operand::Imm(trips)]);
        b.loop_end_while(Operand::Reg(c));
        b.finish(vec![])
    }

    /// Coalesced loads with maximally divergent store traffic (the sad
    /// write-heavy shape that stresses DRAM bandwidth even at 8 warps).
    fn divergent_writer(name: &str, trips: u64, stores_per_trip: usize) -> Kernel {
        let mut b = KernelBuilder::new(name);
        let off = b.alu(ValueOp::Mul, &[Operand::Tid, Operand::Imm(4)]);
        let i = b.alu(ValueOp::Mov, &[Operand::Imm(0)]);
        b.loop_begin();
        let t = b.alu(ValueOp::Mul, &[Operand::Reg(i), Operand::Imm(64 * 1024 * 1024)]);
        let a0 = b.alu(ValueOp::Add, &[Operand::Reg(off), Operand::Reg(t)]);
        let a = b.alu(ValueOp::Add, &[Operand::Reg(a0), Operand::Imm(region(0))]);
        let x = b.load(MemSpace::Global, Operand::Reg(a));
        let v = fma_chain(&mut b, x, 1);
        for s in 0..stores_per_trip {
            let h = b.alu(ValueOp::Hash, &[Operand::Tid, Operand::Reg(i), Operand::Imm(s as u64)]);
            let m = b.alu(ValueOp::Rem, &[Operand::Reg(h), Operand::Imm(1u64 << 30)]);
            let al = b.alu(ValueOp::And, &[Operand::Reg(m), Operand::Imm(!3u64)]);
            let sa = b.alu(ValueOp::Add, &[Operand::Reg(al), Operand::Imm(region(2 + s as u64))]);
            b.store(MemSpace::Global, Operand::Reg(sa), Operand::Reg(v));
        }
        b.alu_into(i, ValueOp::Add, &[Operand::Reg(i), Operand::Imm(1)]);
        let c = b.alu(ValueOp::CmpLt, &[Operand::Reg(i), Operand::Imm(trips)]);
        b.loop_end_while(Operand::Reg(c));
        b.finish(vec![])
    }

    /// Stencil: several loads at small offsets around a coalesced index —
    /// neighbouring lanes and iterations share lines (L1/L2 locality), plus
    /// a coalesced store (hotspot / stencil / convolution shapes).
    fn stencil(name: &str, trips: u64, taps: usize, fma: usize) -> Kernel {
        let mut b = KernelBuilder::new(name);
        let off = b.alu(ValueOp::Mul, &[Operand::Tid, Operand::Imm(4)]);
        let i = b.alu(ValueOp::Mov, &[Operand::Imm(0)]);
        b.loop_begin();
        let row = b.alu(ValueOp::Mul, &[Operand::Reg(i), Operand::Imm(8192)]);
        let center = b.alu(ValueOp::Add, &[Operand::Reg(off), Operand::Reg(row)]);
        let mut acc = None;
        for tap in 0..taps {
            let delta = (tap as u64) * 4 + 4;
            let a0 = b.alu(ValueOp::Add, &[Operand::Reg(center), Operand::Imm(delta)]);
            let a = b.alu(ValueOp::Add, &[Operand::Reg(a0), Operand::Imm(region(0))]);
            let x = b.load(MemSpace::Global, Operand::Reg(a));
            acc = Some(match acc {
                None => x,
                Some(p) => b.fp_add(&[Operand::Reg(p), Operand::Reg(x)]),
            });
        }
        // Every caller passes taps >= 1; a tapless stencil degenerates to
        // accumulating the center address itself.
        let v = fma_chain(&mut b, acc.unwrap_or(center), fma);
        let sa = b.alu(ValueOp::Add, &[Operand::Reg(center), Operand::Imm(region(1))]);
        b.store(MemSpace::Global, Operand::Reg(sa), Operand::Reg(v));
        b.alu_into(i, ValueOp::Add, &[Operand::Reg(i), Operand::Imm(1)]);
        let c = b.alu(ValueOp::CmpLt, &[Operand::Reg(i), Operand::Imm(trips)]);
        b.loop_end_while(Operand::Reg(c));
        b.finish(vec![])
    }

    /// Serial pointer chase: each loaded value provides the next address —
    /// zero memory-level parallelism, pure latency sensitivity.
    fn pointer_chase(name: &str, steps: u64, region_bytes: u64) -> Kernel {
        let mut b = KernelBuilder::new(name);
        let h0 = b.alu(ValueOp::Hash, &[Operand::Tid]);
        let ptr = b.alu(ValueOp::Rem, &[Operand::Reg(h0), Operand::Imm(region_bytes)]);
        let i = b.alu(ValueOp::Mov, &[Operand::Imm(0)]);
        b.loop_begin();
        let al = b.alu(ValueOp::And, &[Operand::Reg(ptr), Operand::Imm(!3u64)]);
        let a = b.alu(ValueOp::Add, &[Operand::Reg(al), Operand::Imm(region(0))]);
        let x = b.load(MemSpace::Global, Operand::Reg(a));
        b.alu_into(ptr, ValueOp::Rem, &[Operand::Reg(x), Operand::Imm(region_bytes)]);
        b.alu_into(i, ValueOp::Add, &[Operand::Reg(i), Operand::Imm(1)]);
        let c = b.alu(ValueOp::CmpLt, &[Operand::Reg(i), Operand::Imm(steps)]);
        b.loop_end_while(Operand::Reg(c));
        b.finish(vec![])
    }

    /// Tiled compute: coalesced global load → shared store → barrier →
    /// shared loads feeding dense FMA chains (sgemm / matrixMul shape).
    fn shared_tile(name: &str, trips: u64, shared_ops: usize, fma: usize) -> Kernel {
        let mut b = KernelBuilder::new(name);
        let off = b.alu(ValueOp::Mul, &[Operand::Tid, Operand::Imm(4)]);
        let soff = b.alu(ValueOp::Mul, &[Operand::TidInBlock, Operand::Imm(4)]);
        let i = b.alu(ValueOp::Mov, &[Operand::Imm(0)]);
        b.loop_begin();
        let t = b.alu(ValueOp::Mul, &[Operand::Reg(i), Operand::Imm(1024 * 1024)]);
        let a0 = b.alu(ValueOp::Add, &[Operand::Reg(off), Operand::Reg(t)]);
        let a = b.alu(ValueOp::Add, &[Operand::Reg(a0), Operand::Imm(region(0))]);
        let x = b.load(MemSpace::Global, Operand::Reg(a));
        b.store(MemSpace::Shared, Operand::Reg(soff), Operand::Reg(x));
        b.sync();
        let mut acc = x;
        for k in 0..shared_ops {
            let sa = b.alu(ValueOp::Add, &[Operand::Reg(soff), Operand::Imm((k as u64) * 4)]);
            let y = b.load(MemSpace::Shared, Operand::Reg(sa));
            acc = b.fp_fma(&[Operand::Reg(acc), Operand::Reg(y), Operand::Imm(1)]);
        }
        let _ = fma_chain(&mut b, acc, fma);
        b.alu_into(i, ValueOp::Add, &[Operand::Reg(i), Operand::Imm(1)]);
        let c = b.alu(ValueOp::CmpLt, &[Operand::Reg(i), Operand::Imm(trips)]);
        b.loop_end_while(Operand::Reg(c));
        b.finish(vec![])
    }

    /// Compute-bound: a long dependent FMA/SFU pipeline with a single cold
    /// load at each end (mri-q / tpacf shape).
    fn compute_bound(name: &str, trips: u64, fma: usize, sfu: usize) -> Kernel {
        let mut b = KernelBuilder::new(name);
        let x = b.load_pattern(AddrPattern::Coalesced { base: region(0), elem_bytes: 4 });
        let i = b.alu(ValueOp::Mov, &[Operand::Imm(0)]);
        b.loop_begin();
        let mut acc = fma_chain(&mut b, x, fma);
        for _ in 0..sfu {
            acc = b.sfu(&[Operand::Reg(acc)]);
        }
        independent_fp(&mut b, acc, 2);
        b.alu_into(i, ValueOp::Add, &[Operand::Reg(i), Operand::Imm(1)]);
        let c = b.alu(ValueOp::CmpLt, &[Operand::Reg(i), Operand::Imm(trips)]);
        b.loop_end_while(Operand::Reg(c));
        b.store_pattern(AddrPattern::Coalesced { base: region(1), elem_bytes: 4 }, Operand::Reg(x));
        b.finish(vec![])
    }

    /// Warp-correlated control divergence: warps whose hashed id falls
    /// under `heavy_pct` run a long streaming path, the rest a shorter,
    /// compute-denser one. Both paths are the same *cost class* (coalesced
    /// DRAM streaming) — real triangular-solve imbalance is a factor of a
    /// few — but their interval profiles differ in length and shape, which
    /// is what creates the two warp populations that defeat MAX/MIN
    /// representative selection (Figure 7) (lud / gaussian shapes).
    fn warp_bimodal(name: &str, heavy_pct: u64, heavy_trips: u64, light_trips: u64) -> Kernel {
        let mut b = KernelBuilder::new(name);
        // Block-correlated divergence: whole thread blocks take the heavy
        // or the light path (as in triangular solves, where a block's
        // position in the matrix decides its work), so block turnover
        // keeps cores busy and no minority population dominates the tail.
        let h = b.alu(ValueOp::Hash, &[Operand::Block]);
        let sel = b.alu(ValueOp::Rem, &[Operand::Reg(h), Operand::Imm(100)]);
        let c = b.alu(ValueOp::CmpLt, &[Operand::Reg(sel), Operand::Imm(heavy_pct)]);
        let off = b.alu(ValueOp::Mul, &[Operand::Tid, Operand::Imm(4)]);
        b.if_begin(Operand::Reg(c));
        {
            // Heavy path: more trips, sparse compute.
            let i = b.alu(ValueOp::Mov, &[Operand::Imm(0)]);
            b.loop_begin();
            let t = b.alu(ValueOp::Mul, &[Operand::Reg(i), Operand::Imm(32 * 1024 * 1024)]);
            let a0 = b.alu(ValueOp::Add, &[Operand::Reg(off), Operand::Reg(t)]);
            let a = b.alu(ValueOp::Add, &[Operand::Reg(a0), Operand::Imm(region(0))]);
            let x = b.load(MemSpace::Global, Operand::Reg(a));
            let _ = fma_chain(&mut b, x, 2);
            b.alu_into(i, ValueOp::Add, &[Operand::Reg(i), Operand::Imm(1)]);
            let cc = b.alu(ValueOp::CmpLt, &[Operand::Reg(i), Operand::Imm(heavy_trips)]);
            b.loop_end_while(Operand::Reg(cc));
        }
        b.if_else();
        {
            // Light path: fewer trips, denser compute per trip.
            let i = b.alu(ValueOp::Mov, &[Operand::Imm(0)]);
            b.loop_begin();
            let t = b.alu(ValueOp::Mul, &[Operand::Reg(i), Operand::Imm(32 * 1024 * 1024)]);
            let a0 = b.alu(ValueOp::Add, &[Operand::Reg(off), Operand::Reg(t)]);
            let a = b.alu(ValueOp::Add, &[Operand::Reg(a0), Operand::Imm(region(1))]);
            let x = b.load(MemSpace::Global, Operand::Reg(a));
            let _ = fma_chain(&mut b, x, 8);
            b.alu_into(i, ValueOp::Add, &[Operand::Reg(i), Operand::Imm(1)]);
            let cc = b.alu(ValueOp::CmpLt, &[Operand::Reg(i), Operand::Imm(light_trips)]);
            b.loop_end_while(Operand::Reg(cc));
        }
        b.if_end();
        b.finish(vec![])
    }

    /// Data-dependent trip counts: each warp's loop length is a hashed
    /// function of its id (range `min_trips..min_trips+spread`), giving a
    /// spectrum of interval-profile lengths (bfs / nw shapes).
    fn variable_trips(name: &str, min_trips: u64, spread: u64, region_bytes: u64) -> Kernel {
        let mut b = KernelBuilder::new(name);
        // Trip counts vary per *block* (a frontier chunk's size), with a
        // small per-warp perturbation so profiles differ within blocks too.
        let h0 = b.alu(ValueOp::Hash, &[Operand::Block, Operand::Imm(77)]);
        let h = b.alu(ValueOp::Add, &[Operand::Reg(h0), Operand::WarpInBlock]);
        let extra = b.alu(ValueOp::Rem, &[Operand::Reg(h), Operand::Imm(spread.max(1))]);
        let trips = b.alu(ValueOp::Add, &[Operand::Reg(extra), Operand::Imm(min_trips)]);
        let i = b.alu(ValueOp::Mov, &[Operand::Imm(0)]);
        b.loop_begin();
        let hh = b.alu(ValueOp::Hash, &[Operand::Tid, Operand::Reg(i), Operand::Imm(3)]);
        let m = b.alu(ValueOp::Rem, &[Operand::Reg(hh), Operand::Imm(region_bytes)]);
        let al = b.alu(ValueOp::And, &[Operand::Reg(m), Operand::Imm(!3u64)]);
        let a = b.alu(ValueOp::Add, &[Operand::Reg(al), Operand::Imm(region(0))]);
        let x = b.load(MemSpace::Global, Operand::Reg(a));
        let _ = fma_chain(&mut b, x, 1);
        b.alu_into(i, ValueOp::Add, &[Operand::Reg(i), Operand::Imm(1)]);
        let c = b.alu(ValueOp::CmpLt, &[Operand::Reg(i), Operand::Reg(trips)]);
        b.loop_end_while(Operand::Reg(c));
        b.finish(vec![])
    }

    /// Indirect (index-driven) gather: a coalesced index load feeds a
    /// dependent divergent data load (spmv / gridding shape).
    fn indirect_gather(name: &str, trips: u64, region_bytes: u64) -> Kernel {
        let mut b = KernelBuilder::new(name);
        let off = b.alu(ValueOp::Mul, &[Operand::Tid, Operand::Imm(4)]);
        let i = b.alu(ValueOp::Mov, &[Operand::Imm(0)]);
        b.loop_begin();
        let t = b.alu(ValueOp::Mul, &[Operand::Reg(i), Operand::Imm(1024 * 1024)]);
        let a0 = b.alu(ValueOp::Add, &[Operand::Reg(off), Operand::Reg(t)]);
        let ia = b.alu(ValueOp::Add, &[Operand::Reg(a0), Operand::Imm(region(0))]);
        let idx = b.load(MemSpace::Global, Operand::Reg(ia));
        let m = b.alu(ValueOp::Rem, &[Operand::Reg(idx), Operand::Imm(region_bytes)]);
        let al = b.alu(ValueOp::And, &[Operand::Reg(m), Operand::Imm(!3u64)]);
        let da = b.alu(ValueOp::Add, &[Operand::Reg(al), Operand::Imm(region(1))]);
        let x = b.load(MemSpace::Global, Operand::Reg(da));
        let _ = fma_chain(&mut b, x, 2);
        b.alu_into(i, ValueOp::Add, &[Operand::Reg(i), Operand::Imm(1)]);
        let c = b.alu(ValueOp::CmpLt, &[Operand::Reg(i), Operand::Imm(trips)]);
        b.loop_end_while(Operand::Reg(c));
        b.finish(vec![])
    }

    /// Intra-warp reduction: the active-lane population halves every
    /// iteration (lane-level control divergence, shared-memory traffic).
    fn reduction(name: &str, rounds: u64) -> Kernel {
        let mut b = KernelBuilder::new(name);
        let x = b.load_pattern(AddrPattern::Coalesced { base: region(0), elem_bytes: 4 });
        b.store(MemSpace::Shared, Operand::Lane, Operand::Reg(x));
        let stride = b.alu(ValueOp::Mov, &[Operand::Imm(16)]);
        let r = b.alu(ValueOp::Mov, &[Operand::Imm(0)]);
        b.loop_begin();
        let c = b.alu(ValueOp::CmpLt, &[Operand::Lane, Operand::Reg(stride)]);
        b.if_begin(Operand::Reg(c));
        let sa = b.alu(ValueOp::Add, &[Operand::Lane, Operand::Reg(stride)]);
        let y = b.load(MemSpace::Shared, Operand::Reg(sa));
        let s = b.fp_add(&[Operand::Reg(y), Operand::Reg(x)]);
        b.store(MemSpace::Shared, Operand::Lane, Operand::Reg(s));
        b.if_end();
        b.alu_into(stride, ValueOp::Shr, &[Operand::Reg(stride), Operand::Imm(1)]);
        b.alu_into(r, ValueOp::Add, &[Operand::Reg(r), Operand::Imm(1)]);
        let cont = b.alu(ValueOp::CmpLt, &[Operand::Reg(r), Operand::Imm(rounds)]);
        b.loop_end_while(Operand::Reg(cont));
        b.store_pattern(AddrPattern::Coalesced { base: region(1), elem_bytes: 4 }, Operand::Reg(x));
        b.finish(vec![])
    }

    /// Coalesced loads, strided (fully divergent) stores — the transpose
    /// shape.
    fn transpose(name: &str, trips: u64) -> Kernel {
        let mut b = KernelBuilder::new(name);
        let off = b.alu(ValueOp::Mul, &[Operand::Tid, Operand::Imm(4)]);
        let soff = b.alu(ValueOp::Mul, &[Operand::Tid, Operand::Imm(512)]);
        let i = b.alu(ValueOp::Mov, &[Operand::Imm(0)]);
        b.loop_begin();
        let t = b.alu(ValueOp::Mul, &[Operand::Reg(i), Operand::Imm(16 * 1024 * 1024)]);
        let a0 = b.alu(ValueOp::Add, &[Operand::Reg(off), Operand::Reg(t)]);
        let a = b.alu(ValueOp::Add, &[Operand::Reg(a0), Operand::Imm(region(0))]);
        let x = b.load(MemSpace::Global, Operand::Reg(a));
        let s0 = b.alu(ValueOp::Add, &[Operand::Reg(soff), Operand::Reg(t)]);
        let sm = b.alu(ValueOp::Rem, &[Operand::Reg(s0), Operand::Imm(1u64 << 30)]);
        let sa = b.alu(ValueOp::Add, &[Operand::Reg(sm), Operand::Imm(region(1))]);
        b.store(MemSpace::Global, Operand::Reg(sa), Operand::Reg(x));
        b.alu_into(i, ValueOp::Add, &[Operand::Reg(i), Operand::Imm(1)]);
        let c = b.alu(ValueOp::CmpLt, &[Operand::Reg(i), Operand::Imm(trips)]);
        b.loop_end_while(Operand::Reg(c));
        b.finish(vec![])
    }

    /// Random scatter stores into a small region (histogram shape): high
    /// store divergence with L2 locality.
    fn histogram(name: &str, trips: u64, bins_bytes: u64) -> Kernel {
        let mut b = KernelBuilder::new(name);
        let off = b.alu(ValueOp::Mul, &[Operand::Tid, Operand::Imm(4)]);
        let i = b.alu(ValueOp::Mov, &[Operand::Imm(0)]);
        b.loop_begin();
        let t = b.alu(ValueOp::Mul, &[Operand::Reg(i), Operand::Imm(4 * 1024 * 1024)]);
        let a0 = b.alu(ValueOp::Add, &[Operand::Reg(off), Operand::Reg(t)]);
        let a = b.alu(ValueOp::Add, &[Operand::Reg(a0), Operand::Imm(region(0))]);
        let x = b.load(MemSpace::Global, Operand::Reg(a));
        let m = b.alu(ValueOp::Rem, &[Operand::Reg(x), Operand::Imm(bins_bytes)]);
        let al = b.alu(ValueOp::And, &[Operand::Reg(m), Operand::Imm(!3u64)]);
        let sa = b.alu(ValueOp::Add, &[Operand::Reg(al), Operand::Imm(region(1))]);
        b.store(MemSpace::Global, Operand::Reg(sa), Operand::Reg(x));
        b.alu_into(i, ValueOp::Add, &[Operand::Reg(i), Operand::Imm(1)]);
        let c = b.alu(ValueOp::CmpLt, &[Operand::Reg(i), Operand::Imm(trips)]);
        b.loop_end_while(Operand::Reg(c));
        b.finish(vec![])
    }
}

// ---------------------------------------------------------------------------
// The 40-kernel catalogue
// ---------------------------------------------------------------------------

fn wl(
    name: &str,
    suite: Suite,
    divergence: DivergenceClass,
    control_divergent: bool,
    kernel: Kernel,
    description: &str,
) -> Workload {
    Workload {
        name: name.to_string(),
        suite,
        divergence,
        control_divergent,
        kernel,
        launch: default_launch(),
        description: description.to_string(),
    }
}

/// Builds the full 40-workload catalogue (deterministic order and content).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn all() -> Vec<Workload> {
    use DivergenceClass::{Coalesced, High, Medium};
    use Suite::{NvidiaSdk, Parboil, Rodinia};
    vec![
        // ----- Rodinia ----------------------------------------------------
        wl("srad_kernel1", Rodinia, Medium, false,
            Gen::strided("srad_kernel1", 10, 32, 1 << 28, 3, true),
            "SRAD extract: 8-way divergent strided loads+stores over a large image (the Figure 4 case study)"),
        wl("srad_kernel2", Rodinia, Coalesced, false,
            Gen::stencil("srad_kernel2", 8, 4, 2),
            "SRAD reduce: 4-tap stencil with row reuse"),
        wl("kmeans_invert_mapping", Rodinia, High, false,
            Gen::hot_loads_divergent_stores("kmeans_invert_mapping", 12, 12 * 1024, 10),
            "90% L1-hot divergent loads, 10% DRAM gathers + maximally divergent writes (the paper's hardest kernel)"),
        wl("kmeans_kmeans_point", Rodinia, Medium, false,
            Gen::random_gather("kmeans_kmeans_point", 10, 192 * 1024, 3),
            "centroid gather with L2 locality"),
        wl("cfd_step_factor", Rodinia, Coalesced, false,
            Gen::streaming("cfd_step_factor", 8, 2, 1, 2),
            "fully coalesced streaming, DRAM-latency bound (Figure 16 kernel)"),
        wl("cfd_compute_flux", Rodinia, Medium, false,
            Gen::strided("cfd_compute_flux", 10, 64, 400 * 1024, 4, false),
            "up to 16-way divergent loads with L2 reuse (Figure 16 kernel)"),
        wl("bfs_kernel1", Rodinia, High, true,
            Gen::variable_trips("bfs_kernel1", 4, 8, 1 << 26),
            "frontier expansion: warp-varying trip counts + random gathers"),
        wl("bfs_kernel2", Rodinia, High, false,
            Gen::pointer_chase("bfs_kernel2", 8, 1 << 22),
            "edge chasing: serial dependent divergent loads (zero MLP)"),
        wl("hotspot_calculate_temp", Rodinia, Coalesced, false,
            Gen::stencil("hotspot_calculate_temp", 10, 5, 3),
            "5-tap 2D stencil, strong L1 reuse"),
        wl("pathfinder_dynproc", Rodinia, Coalesced, false,
            Gen::shared_tile("pathfinder_dynproc", 8, 3, 2),
            "tiled dynamic programming via shared memory"),
        wl("lud_diagonal", Rodinia, Medium, true,
            Gen::warp_bimodal("lud_diagonal", 25, 8, 6),
            "quarter of warps do long divergent work (triangular matrix)"),
        wl("lud_perimeter", Rodinia, Medium, true,
            Gen::warp_bimodal("lud_perimeter", 50, 8, 5),
            "half-heavy bimodal warp population"),
        wl("nw_needle1", Rodinia, Medium, true,
            Gen::variable_trips("nw_needle1", 4, 8, 1 << 24),
            "anti-diagonal wavefront: warp-dependent work"),
        wl("backprop_layerforward", Rodinia, Coalesced, true,
            Gen::reduction("backprop_layerforward", 5),
            "intra-warp tree reduction (lane-level divergence)"),
        wl("backprop_adjust_weights", Rodinia, Coalesced, false,
            Gen::streaming("backprop_adjust_weights", 8, 2, 2, 1),
            "weight update streaming: 2 loads, 2 stores per element"),
        wl("streamcluster_pgain", Rodinia, High, false,
            Gen::random_gather("streamcluster_pgain", 12, 1 << 28, 2),
            "random gathers over a DRAM-sized working set"),
        wl("heartwall_kernel", Rodinia, Medium, true,
            Gen::warp_bimodal("heartwall_kernel", 35, 8, 6),
            "image tracking: bimodal warps + divergent gathers"),
        wl("gaussian_fan1", Rodinia, Coalesced, true,
            Gen::warp_bimodal("gaussian_fan1", 60, 8, 5),
            "row elimination: most warps heavy, early-exit rest"),
        wl("gaussian_fan2", Rodinia, Medium, true,
            Gen::variable_trips("gaussian_fan2", 4, 6, 1 << 24),
            "submatrix update with shrinking work per warp"),
        wl("leukocyte_dilate", Rodinia, Medium, false,
            Gen::stencil("leukocyte_dilate", 9, 7, 1),
            "7-tap dilation stencil"),
        // ----- Parboil ----------------------------------------------------
        wl("parboil_sgemm", Parboil, Coalesced, false,
            Gen::shared_tile("parboil_sgemm", 10, 6, 4),
            "tiled dense GEMM: shared-memory tiles + dense FMA chains"),
        wl("parboil_spmv", Parboil, High, false,
            Gen::indirect_gather("parboil_spmv", 10, 1 << 27),
            "CSR SpMV: coalesced index load feeding divergent data gather"),
        wl("parboil_stencil", Parboil, Coalesced, false,
            Gen::stencil("parboil_stencil", 10, 6, 2),
            "7-point 3D stencil (6 neighbour taps)"),
        wl("parboil_sad_calc8", Parboil, High, false,
            Gen::divergent_writer("parboil_sad_calc8", 10, 2),
            "SAD: write-heavy with maximally divergent stores (DRAM-queue bound even at 8 warps)"),
        wl("parboil_sad_calc16", Parboil, High, false,
            Gen::divergent_writer("parboil_sad_calc16", 8, 3),
            "SAD 16x16 variant: even heavier write traffic"),
        wl("parboil_histo_main", Parboil, High, false,
            Gen::histogram("parboil_histo_main", 10, 64 * 1024),
            "histogram: random scatter stores into 64 KiB of bins"),
        wl("parboil_lbm", Parboil, Coalesced, false,
            Gen::streaming("parboil_lbm", 6, 5, 5, 1),
            "lattice-Boltzmann: many coalesced streams in and out"),
        wl("parboil_mriq_computeQ", Parboil, Coalesced, false,
            Gen::compute_bound("parboil_mriq_computeQ", 10, 6, 3),
            "compute-bound: trig-heavy FMA/SFU pipeline"),
        wl("parboil_mri_gridding", Parboil, High, false,
            Gen::random_gather("parboil_mri_gridding", 10, 1 << 26, 2),
            "gridding: scattered sample gathers"),
        wl("parboil_tpacf", Parboil, Coalesced, true,
            Gen::warp_bimodal("parboil_tpacf", 40, 8, 6),
            "angular correlation: data-dependent histogram walk per warp"),
        wl("parboil_cutcp", Parboil, Medium, false,
            Gen::strided("parboil_cutcp", 9, 48, 1 << 24, 3, false),
            "cutoff Coulomb potential: 12-way divergent lattice reads"),
        wl("parboil_bfs", Parboil, High, true,
            Gen::variable_trips("parboil_bfs", 3, 10, 1 << 26),
            "BFS with highly skewed per-warp frontier sizes"),
        // ----- NVIDIA SDK -------------------------------------------------
        wl("sdk_vectoradd", NvidiaSdk, Coalesced, false,
            Gen::streaming("sdk_vectoradd", 6, 2, 1, 1),
            "c[i] = a[i] + b[i]: minimal compute, pure bandwidth"),
        wl("sdk_matrixmul", NvidiaSdk, Coalesced, false,
            Gen::shared_tile("sdk_matrixmul", 9, 5, 3),
            "tiled matrix multiply"),
        wl("sdk_transpose", NvidiaSdk, High, false,
            Gen::transpose("sdk_transpose", 8),
            "naive transpose: coalesced reads, 32-way divergent writes"),
        wl("sdk_reduction", NvidiaSdk, Coalesced, true,
            Gen::reduction("sdk_reduction", 5),
            "tree reduction with halving lane population"),
        wl("sdk_blackscholes", NvidiaSdk, Coalesced, false,
            Gen::compute_bound("sdk_blackscholes", 8, 4, 4),
            "Black-Scholes: SFU-heavy per-option pricing"),
        wl("sdk_montecarlo", NvidiaSdk, Medium, false,
            Gen::random_gather("sdk_montecarlo", 10, 24 * 1024, 5),
            "Monte-Carlo paths: L1-hot random gathers + compute"),
        wl("sdk_convsep", NvidiaSdk, Coalesced, false,
            Gen::stencil("sdk_convsep", 9, 8, 2),
            "separable convolution: 8-tap row filter with heavy line reuse"),
        wl("sdk_sortingnetworks", NvidiaSdk, Medium, true,
            Gen::variable_trips("sdk_sortingnetworks", 4, 6, 1 << 23),
            "bitonic stages: stage count varies across warps"),
    ]
}

/// Looks up one workload by name.
#[must_use]
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

/// The control-divergent subset used for the representative-warp selection
/// study (Figure 7).
#[must_use]
pub fn control_divergent() -> Vec<Workload> {
    all().into_iter().filter(|w| w.control_divergent).collect()
}

/// The three kernels whose CPI stacks Figure 16 examines.
#[must_use]
pub fn figure16() -> Vec<Workload> {
    ["cfd_step_factor", "cfd_compute_flux", "kmeans_invert_mapping"]
        .iter()
        .copied()
        .filter_map(by_name)
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use gpumech_isa::WarpId;
    use std::collections::HashSet;

    /// Unique 128 B lines touched by one instruction (local helper; the real
    /// coalescer lives in `gpumech-mem`).
    fn requests(addrs: &[u64]) -> usize {
        addrs.iter().map(|a| a >> 7).collect::<HashSet<_>>().len()
    }

    #[test]
    fn catalogue_has_40_unique_valid_workloads() {
        let ws = all();
        assert_eq!(ws.len(), 40);
        let names: HashSet<_> = ws.iter().map(|w| w.name.clone()).collect();
        assert_eq!(names.len(), 40, "duplicate workload names");
        for w in &ws {
            w.kernel.validate().unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert_eq!(w.kernel.name, w.name);
            assert!(!w.description.is_empty());
        }
    }

    #[test]
    fn suites_are_all_represented() {
        let ws = all();
        for suite in [Suite::Rodinia, Suite::Parboil, Suite::NvidiaSdk] {
            assert!(ws.iter().filter(|w| w.suite == suite).count() >= 8, "{suite} underrepresented");
        }
    }

    #[test]
    fn control_divergent_subset_is_substantial() {
        let cd = control_divergent();
        assert!(cd.len() >= 10, "only {} control-divergent kernels", cd.len());
        assert!(cd.iter().all(|w| w.control_divergent));
    }

    #[test]
    fn every_workload_traces_on_a_small_grid() {
        for w in all() {
            let name = w.name.clone();
            let t = w.with_blocks(2).trace().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(t.warps.len(), 16);
            for wt in &t.warps {
                assert!(wt.len() >= 5, "{name}: trivial trace ({} insts)", wt.len());
                assert!(wt.len() <= 100_000, "{name}: runaway trace");
            }
        }
    }

    #[test]
    fn coalesced_workloads_have_low_request_counts() {
        let w = by_name("sdk_vectoradd").unwrap().with_blocks(1);
        let t = w.trace().unwrap();
        for inst in t.warps[0].insts.iter().filter(|i| i.kind.is_global_mem()) {
            assert!(requests(&inst.addrs) <= 2, "vectoradd should coalesce: {:?}", inst.addrs);
        }
    }

    #[test]
    fn high_divergence_workloads_reach_32_requests() {
        let w = by_name("sdk_transpose").unwrap().with_blocks(1);
        let t = w.trace().unwrap();
        let max_req = t.warps[0]
            .insts
            .iter()
            .filter(|i| i.kind.is_global_store())
            .map(|i| requests(&i.addrs))
            .max()
            .unwrap();
        assert_eq!(max_req, 32, "transpose stores should be fully divergent");

        let w = by_name("kmeans_invert_mapping").unwrap().with_blocks(1);
        let t = w.trace().unwrap();
        let max_req = t.warps[0]
            .insts
            .iter()
            .filter(|i| i.kind.is_global_store())
            .map(|i| requests(&i.addrs))
            .max()
            .unwrap();
        assert!(max_req >= 30, "invert_mapping stores should be ~fully divergent, got {max_req}");
    }

    #[test]
    fn medium_divergence_sits_between() {
        let w = by_name("cfd_compute_flux").unwrap().with_blocks(1);
        let t = w.trace().unwrap();
        let reqs: Vec<usize> = t.warps[0]
            .insts
            .iter()
            .filter(|i| i.kind.is_global_load())
            .map(|i| requests(&i.addrs))
            .collect();
        let max = *reqs.iter().max().unwrap();
        // 32 lanes x 64 B stride = 16 lines, +1 when the region wrap splits
        // the warp across the boundary.
        assert!((8..=17).contains(&max), "compute_flux divergence out of band: {max}");
    }

    #[test]
    fn bimodal_kernels_have_two_warp_populations() {
        let w = by_name("lud_diagonal").unwrap().with_blocks(4);
        let t = w.trace().unwrap();
        let lens: Vec<usize> = t.warps.iter().map(WarpTrace::len).collect();
        let min = *lens.iter().min().unwrap();
        let max = *lens.iter().max().unwrap();
        // Two populations with moderately different lengths (real
        // triangular-solve imbalance, not orders of magnitude).
        assert!(max as f64 >= 1.15 * min as f64, "expected bimodal lengths, got {min}..{max}");
        let distinct: HashSet<usize> = lens.iter().copied().collect();
        assert!(distinct.len() >= 2, "expected two populations");
    }

    #[test]
    fn variable_trip_kernels_vary_across_warps() {
        let w = by_name("bfs_kernel1").unwrap().with_blocks(4);
        let t = w.trace().unwrap();
        let lens: HashSet<usize> = t.warps.iter().map(WarpTrace::len).collect();
        assert!(lens.len() >= 4, "expected varied warp lengths, got {lens:?}");
    }

    #[test]
    fn pointer_chase_has_serial_dependent_loads() {
        let k = Gen::pointer_chase("chase", 6, 1 << 20);
        let t = crate::trace_kernel(&k, LaunchConfig::new(32, 1)).unwrap();
        let wt = &t.warps[0];
        let load_idxs: Vec<u32> = wt
            .insts
            .iter()
            .enumerate()
            .filter(|(_, i)| i.kind.is_global_load())
            .map(|(n, _)| n as u32)
            .collect();
        assert!(load_idxs.len() >= 6);
        // Each load (after the first) must transitively depend on the
        // previous load through the address computation.
        for pair in load_idxs.windows(2) {
            let (prev, next) = (pair[0], pair[1]);
            let mut frontier = vec![next];
            let mut reaches = false;
            let mut seen = HashSet::new();
            while let Some(n) = frontier.pop() {
                if n == prev {
                    reaches = true;
                    break;
                }
                if seen.insert(n) {
                    frontier.extend(wt.insts[n as usize].deps.iter().copied());
                }
            }
            assert!(reaches, "load {next} does not depend on load {prev}");
        }
    }

    #[test]
    fn workload_traces_are_deterministic() {
        let w = by_name("parboil_spmv").unwrap().with_blocks(1);
        assert_eq!(w.trace().unwrap(), w.trace().unwrap());
    }

    #[test]
    fn fig16_kernels_exist_with_expected_divergence() {
        let ks = figure16();
        assert_eq!(ks.len(), 3);
        assert_eq!(ks[0].divergence, DivergenceClass::Coalesced);
        assert_eq!(ks[1].divergence, DivergenceClass::Medium);
        assert_eq!(ks[2].divergence, DivergenceClass::High);
    }

    #[test]
    fn by_name_misses_return_none() {
        assert!(by_name("not_a_kernel").is_none());
    }

    #[test]
    fn hot_load_workload_is_mostly_hot_with_rare_cold_excursions() {
        let w = by_name("kmeans_invert_mapping").unwrap().with_blocks(4);
        let t = w.trace().unwrap();
        let hot_base = 1u64 << 32; // region(0)
        let (mut hot, mut cold) = (0usize, 0usize);
        for inst in t.warps.iter().flat_map(|wt| wt.insts.iter()) {
            if inst.kind.is_global_load() {
                if inst.addrs.iter().all(|&a| a >= hot_base && a < hot_base + (1 << 20)) {
                    hot += 1;
                } else {
                    cold += 1;
                }
            }
        }
        let frac_cold = cold as f64 / (hot + cold) as f64;
        assert!(
            (0.03..=0.25).contains(&frac_cold),
            "expected ~10% cold loads, got {frac_cold} ({cold}/{})",
            hot + cold
        );
        let _ = WarpId::new(0); // keep import used
    }
}
