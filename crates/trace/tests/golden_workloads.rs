//! Golden tests over the 40-workload library.
//!
//! Two kinds of pinning:
//!
//! * **Static facts** — for every workload, the analyzer's branch-divergence
//!   and memory-coalescing verdicts are pinned to the values current at the
//!   time the analyzer was introduced. A change here means the analyzer (or
//!   a kernel) changed behaviour and the diff should be reviewed, not that
//!   the new values are necessarily wrong.
//! * **Trace equivalence** — the analysis-guided uniform-branch fast path
//!   in the tracer must be a pure optimization: with it on or off, every
//!   workload's trace must serialize to byte-identical form.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use gpumech_analyze::{analyze, CoalesceClass, Severity};
use gpumech_trace::{io, trace_kernel_opts, workloads, TraceOptions};

/// `(name, branches, divergent_branches, [broadcast, coalesced, strided,
/// scattered])` for every bundled workload.
const GOLDEN: [(&str, u32, u32, [u32; 4]); 40] = [
    ("srad_kernel1", 1, 0, [0, 0, 0, 2]),
    ("srad_kernel2", 1, 0, [0, 5, 0, 0]),
    ("kmeans_invert_mapping", 3, 1, [0, 0, 0, 3]),
    ("kmeans_kmeans_point", 1, 0, [0, 0, 0, 1]),
    ("cfd_step_factor", 1, 0, [0, 3, 0, 0]),
    ("cfd_compute_flux", 1, 0, [0, 0, 0, 1]),
    ("bfs_kernel1", 1, 0, [0, 0, 0, 1]),
    ("bfs_kernel2", 1, 0, [0, 0, 0, 1]),
    ("hotspot_calculate_temp", 1, 0, [0, 6, 0, 0]),
    ("pathfinder_dynproc", 1, 0, [0, 1, 0, 0]),
    ("lud_diagonal", 4, 0, [0, 2, 0, 0]),
    ("lud_perimeter", 4, 0, [0, 2, 0, 0]),
    ("nw_needle1", 1, 0, [0, 0, 0, 1]),
    ("backprop_layerforward", 2, 1, [0, 2, 0, 0]),
    ("backprop_adjust_weights", 1, 0, [0, 4, 0, 0]),
    ("streamcluster_pgain", 1, 0, [0, 0, 0, 1]),
    ("heartwall_kernel", 4, 0, [0, 2, 0, 0]),
    ("gaussian_fan1", 4, 0, [0, 2, 0, 0]),
    ("gaussian_fan2", 1, 0, [0, 0, 0, 1]),
    ("leukocyte_dilate", 1, 0, [0, 8, 0, 0]),
    ("parboil_sgemm", 1, 0, [0, 1, 0, 0]),
    ("parboil_spmv", 1, 0, [0, 1, 0, 1]),
    ("parboil_stencil", 1, 0, [0, 7, 0, 0]),
    ("parboil_sad_calc8", 1, 0, [0, 1, 0, 2]),
    ("parboil_sad_calc16", 1, 0, [0, 1, 0, 3]),
    ("parboil_histo_main", 1, 0, [0, 1, 0, 1]),
    ("parboil_lbm", 1, 0, [0, 10, 0, 0]),
    ("parboil_mriq_computeQ", 1, 0, [0, 2, 0, 0]),
    ("parboil_mri_gridding", 1, 0, [0, 0, 0, 1]),
    ("parboil_tpacf", 4, 0, [0, 2, 0, 0]),
    ("parboil_cutcp", 1, 0, [0, 0, 0, 1]),
    ("parboil_bfs", 1, 0, [0, 0, 0, 1]),
    ("sdk_vectoradd", 1, 0, [0, 3, 0, 0]),
    ("sdk_matrixmul", 1, 0, [0, 1, 0, 0]),
    ("sdk_transpose", 1, 0, [0, 1, 0, 1]),
    ("sdk_reduction", 2, 1, [0, 2, 0, 0]),
    ("sdk_blackscholes", 1, 0, [0, 2, 0, 0]),
    ("sdk_montecarlo", 1, 0, [0, 0, 0, 1]),
    ("sdk_convsep", 1, 0, [0, 9, 0, 0]),
    ("sdk_sortingnetworks", 1, 0, [0, 0, 0, 1]),
];

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[test]
fn golden_table_covers_the_whole_library() {
    let names: Vec<&str> = GOLDEN.iter().map(|g| g.0).collect();
    let lib: Vec<String> = workloads::all().into_iter().map(|w| w.name).collect();
    assert_eq!(lib.len(), 40);
    assert_eq!(names, lib.iter().map(String::as_str).collect::<Vec<_>>());
}

#[test]
fn every_workload_is_lint_clean() {
    for w in workloads::all() {
        let a = analyze(&w.kernel);
        assert!(
            !a.has_errors(),
            "{}: {:?}",
            w.name,
            a.diagnostics_at_least(Severity::Error)
        );
    }
}

#[test]
fn divergence_and_coalescing_verdicts_match_golden() {
    for (name, branches, divergent, [b, c, s, x]) in GOLDEN {
        let w = workloads::by_name(name).expect("golden name exists");
        let m = analyze(&w.kernel).metrics;
        assert_eq!(m.branches, branches, "{name}: branch count");
        assert_eq!(m.divergent_branches, divergent, "{name}: divergent branches");
        assert_eq!(
            [m.broadcast_accesses, m.coalesced_accesses, m.strided_accesses, m.scattered_accesses],
            [b, c, s, x],
            "{name}: coalescing classes"
        );
    }
}

#[test]
fn coalescing_classes_agree_with_the_divergence_tags() {
    // The per-pc classes must be consistent with the metrics rollup, and a
    // statically `Scattered` access must carry the conservative 32-request
    // bound the tracer cross-checks against.
    for w in workloads::all() {
        let a = analyze(&w.kernel);
        for access in a.coalescing.iter().flatten() {
            match access.class {
                CoalesceClass::Broadcast => assert_eq!(access.max_requests, 1, "{}", w.name),
                CoalesceClass::Coalesced => assert!(access.max_requests <= 4, "{}", w.name),
                CoalesceClass::Strided(k) => {
                    assert!(k > 8, "{}: small strides are Coalesced", w.name);
                }
                CoalesceClass::Scattered => assert_eq!(access.max_requests, 32, "{}", w.name),
            }
        }
    }
}

#[test]
fn uniform_branch_fast_path_traces_are_byte_identical() {
    for w in workloads::all() {
        let w = w.with_blocks(2);
        let fast = trace_kernel_opts(&w.kernel, w.launch, TraceOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let slow = trace_kernel_opts(
            &w.kernel,
            w.launch,
            TraceOptions { uniform_branch_fast_path: false },
        )
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let (hf, hs) = (fnv1a(&io::encode(&fast)), fnv1a(&io::encode(&slow)));
        assert_eq!(hf, hs, "{}: fast-path trace diverged from reference", w.name);
    }
}
