//! Dynamic cross-checks of the static verification verdicts.
//!
//! For every workload in the library, the functional trace is replayed
//! against the static analysis:
//!
//! * **bank conflicts** — the observed per-access conflict degree (32-bank
//!   × 4 B model over the recorded lane addresses) must never exceed the
//!   static full-mask bound;
//! * **races** — every *observed* conflicting cross-warp same-block address
//!   overlap within one barrier interval must be covered by a static
//!   [`gpumech_analyze::RacePair`], i.e. the race analysis has no false
//!   negatives on the library's actual executions.
//!
//! Run in debug builds by `ci.sh`; the in-engine `debug_assert!`s perform
//! the bank check a second time while tracing.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::collections::{HashMap, HashSet};

use gpumech_analyze::{analyze, RejectReason, Severity};
use gpumech_isa::{InstKind, MemSpace};
use gpumech_trace::engine::TraceError;
use gpumech_trace::workloads;

/// Observed bank-conflict degree of one dynamic access under the default
/// 32-bank × 4 B geometry.
fn observed_degree(addrs: &[u64]) -> u32 {
    let mut words: Vec<(u64, u64)> = addrs.iter().map(|a| ((a / 4) % 32, a / 4)).collect();
    words.sort_unstable();
    words.dedup();
    let mut best = 1u32;
    let mut i = 0;
    while i < words.len() {
        let bank = words[i].0;
        let mut n = 0;
        while i < words.len() && words[i].0 == bank {
            n += 1;
            i += 1;
        }
        best = best.max(n);
    }
    best
}

#[test]
fn static_bank_bounds_dominate_observed_degrees() {
    let mut shared_insts = 0usize;
    for w in workloads::all() {
        let analysis = analyze(&w.kernel);
        let trace = w.trace().expect("library workloads trace cleanly");
        for warp in &trace.warps {
            for inst in &warp.insts {
                if !matches!(
                    inst.kind,
                    InstKind::Load(MemSpace::Shared) | InstKind::Store(MemSpace::Shared)
                ) {
                    continue;
                }
                shared_insts += 1;
                let fact = analysis
                    .shared_fact(inst.pc)
                    .unwrap_or_else(|| panic!("{}: no fact for shared pc {}", w.name, inst.pc));
                let observed = observed_degree(&inst.addrs);
                assert!(
                    observed <= fact.bank_degree,
                    "{}: pc {} observed {observed}-way, static bound {}-way",
                    w.name,
                    inst.pc,
                    fact.bank_degree
                );
            }
        }
    }
    assert!(shared_insts > 0, "the library must exercise shared memory");
}

#[test]
fn static_race_pairs_cover_observed_conflicts() {
    let mut observed_races = 0usize;
    for w in workloads::all() {
        let analysis = analyze(&w.kernel);
        let static_pairs: HashSet<(u32, u32)> =
            analysis.race_pairs.iter().map(|p| (p.a, p.b)).collect();

        // (block, barrier-interval index, byte address) →
        // deduplicated (warp, pc, is_store) touches.
        type Touches = HashMap<(usize, u32, u64), HashSet<(usize, u32, bool)>>;
        let mut touches: Touches = HashMap::new();
        for warp in &trace_of(&w).warps {
            let mut interval = 0u32;
            for inst in &warp.insts {
                match inst.kind {
                    InstKind::Sync => interval += 1,
                    InstKind::Load(MemSpace::Shared) | InstKind::Store(MemSpace::Shared) => {
                        let store = matches!(inst.kind, InstKind::Store(MemSpace::Shared));
                        for &addr in &inst.addrs {
                            touches
                                .entry((warp.block.index(), interval, addr))
                                .or_default()
                                .insert((warp.warp.index(), inst.pc, store));
                        }
                    }
                    _ => {}
                }
            }
        }

        for group in touches.values() {
            let group: Vec<_> = group.iter().copied().collect();
            for (i, &(wa, pca, sa)) in group.iter().enumerate() {
                for &(wb, pcb, sb) in &group[i..] {
                    if wa == wb || (!sa && !sb) {
                        continue;
                    }
                    observed_races += 1;
                    let key = (pca.min(pcb), pca.max(pcb));
                    assert!(
                        static_pairs.contains(&key),
                        "{}: observed cross-warp conflict at pcs {key:?} not in static \
                         race pairs {static_pairs:?}",
                        w.name
                    );
                }
            }
        }
    }
    // The library is known to contain warp-synchronous shared-memory
    // communication (reduction trees, tiled loops) that manifests as
    // observable cross-warp conflicts — the detector must see them.
    assert!(observed_races > 0, "expected observable cross-warp conflicts in the library");
}

fn trace_of(w: &workloads::Workload) -> gpumech_trace::KernelTrace {
    w.trace().expect("library workloads trace cleanly")
}

#[test]
fn library_passes_verification_with_zero_errors() {
    for w in workloads::all() {
        let analysis = analyze(&w.kernel);
        assert_eq!(analysis.reject_reason(), None, "{} must be accepted", w.name);
        assert!(
            analysis.diagnostics_at_least(Severity::Error).is_empty(),
            "{}: {:?}",
            w.name,
            analysis.diagnostics
        );
    }
}

#[test]
fn known_racy_workloads_carry_warnings_and_still_trace() {
    // These five model real Rodinia/Parboil/SDK kernels whose shared-memory
    // protocol is warp-synchronous under lockstep execution: the static
    // race pass must flag them (cross-warp ordering is not guaranteed by
    // the model) while tracing proceeds unchanged.
    let expect_races = ["pathfinder_dynproc", "backprop_layerforward", "parboil_sgemm",
        "sdk_matrixmul", "sdk_reduction"];
    for w in workloads::all() {
        let analysis = analyze(&w.kernel);
        let has_race = analysis.diagnostics.iter().any(|d| d.code == "shared-race");
        assert_eq!(
            has_race,
            expect_races.contains(&w.name.as_str()),
            "{}: race verdict drifted (pairs {:?})",
            w.name,
            analysis.race_pairs
        );
    }
}

#[test]
fn barrier_divergence_rejects_before_any_tracing() {
    use gpumech_isa::{KernelBuilder, Operand, ValueOp};
    let mut b = KernelBuilder::new("divergent-barrier");
    let c = b.alu(ValueOp::CmpLt, &[Operand::Lane, Operand::Imm(4)]);
    b.if_begin(Operand::Reg(c));
    b.sync();
    b.if_end();
    let k = b.finish(vec![]);
    let launch = gpumech_trace::LaunchConfig::new(64, 1);
    match gpumech_trace::trace_kernel(&k, launch) {
        Err(TraceError::RejectedByAnalysis { reason, .. }) => {
            assert_eq!(reason, RejectReason::BarrierDivergence);
        }
        other => panic!("expected typed rejection, got {other:?}"),
    }
}
