//! The Section VII application: use CPI stacks to find a kernel's scaling
//! bottleneck as the number of resident warps grows.
//!
//! Prints the CPI stack at 8/16/32/48 warps per core for a chosen kernel
//! and names the dominant bottleneck at each point — the "what limits the
//! performance of a given hardware configuration" question the paper's
//! CPI-stack tool answers.
//!
//! Run with: `cargo run --release --example cpi_stack_explorer [kernel]`

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use gpumech::core::{Gpumech, PredictionRequest, SchedulingPolicy, StallCategory};
use gpumech::isa::SimConfig;
use gpumech::trace::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "cfd_compute_flux".to_string());
    let workload = workloads::by_name(&name)
        .unwrap_or_else(|| panic!("unknown kernel {name}; see workloads::all()"))
        .with_blocks(64);

    println!("kernel: {} — {}", workload.name, workload.description);
    println!("\n{:<8}{:>8}{:>8}{:>8}{:>8}{:>8}{:>8}{:>8}{:>10}  bottleneck",
        "warps", "BASE", "DEP", "L1", "L2", "DRAM", "MSHR", "QUEUE", "CPI");

    let trace = workload.trace()?;
    let mut best: Option<(usize, f64)> = None;
    for warps in [8usize, 16, 32, 48] {
        let cfg = SimConfig::table1().with_warps_per_core(warps);
        let model = Gpumech::new(cfg);
        let analysis = model.analyze(&trace)?;
        let p = model.run(
            &PredictionRequest::from_analysis(&analysis)
                .policy(SchedulingPolicy::RoundRobin)
                .model(gpumech::core::Model::MtMshrBand)
                .selection(gpumech::core::SelectionMethod::Clustering),
        )?;
        let stack = p.cpi;
        // The dominant non-BASE category is the bottleneck to attack.
        let bottleneck = StallCategory::ALL
            .into_iter()
            .filter(|&c| c != StallCategory::Base)
            .max_by(|&a, &b| stack.get(a).total_cmp(&stack.get(b)))
            .expect("categories exist");
        print!("{warps:<8}");
        for cat in StallCategory::ALL {
            print!("{:>8.2}", stack.get(cat));
        }
        println!("{:>10.2}  {bottleneck}", stack.total());

        // Throughput = warps*IPC-ish; lower CPI at equal width is better.
        if best.is_none() || stack.total() < best.expect("set").1 {
            best = Some((warps, stack.total()));
        }
    }
    let (warps, cpi) = best.expect("swept at least one point");
    println!("\nbest configuration: {warps} warps/core (predicted CPI {cpi:.2})");
    println!("(increase the dominant category's resource — e.g. MSHRs for MSHR, \
              bandwidth for QUEUE — or reduce divergence in software)");
    Ok(())
}
