//! Modeling your own kernel: build a kernel in the IR, trace it, and ask
//! GPUMech where the cycles go.
//!
//! The kernel below is a histogram-style loop: a coalesced load feeds a
//! data-dependent scatter store — a classic divergence trap. We model it
//! twice: once with the scatter, once with a coalesced store, to quantify
//! what coalescing the writes would buy.
//!
//! Run with: `cargo run --release --example custom_kernel`

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use gpumech::core::{Gpumech, PredictionRequest, SchedulingPolicy};
use gpumech::isa::{KernelBuilder, MemSpace, Operand, SimConfig, ValueOp};
use gpumech::trace::{trace_kernel, LaunchConfig};

/// Builds the histogram kernel; `scatter` selects divergent vs coalesced
/// stores.
fn histogram(scatter: bool) -> gpumech::isa::Kernel {
    let mut b = KernelBuilder::new(if scatter { "histo_scatter" } else { "histo_coalesced" });
    let off = b.alu(ValueOp::Mul, &[Operand::Tid, Operand::Imm(4)]);
    let i = b.alu(ValueOp::Mov, &[Operand::Imm(0)]);
    b.loop_begin();
    // Coalesced read of the input chunk for this trip.
    let t = b.alu(ValueOp::Mul, &[Operand::Reg(i), Operand::Imm(8 * 1024 * 1024)]);
    let a0 = b.alu(ValueOp::Add, &[Operand::Reg(off), Operand::Reg(t)]);
    let a = b.alu(ValueOp::Add, &[Operand::Reg(a0), Operand::Imm(1 << 32)]);
    let x = b.load(MemSpace::Global, Operand::Reg(a));
    // Store: either a data-dependent scatter into the bins, or coalesced.
    let store_addr = if scatter {
        let bin = b.alu(ValueOp::Rem, &[Operand::Reg(x), Operand::Imm(1 << 20)]);
        let al = b.alu(ValueOp::And, &[Operand::Reg(bin), Operand::Imm(!3u64)]);
        b.alu(ValueOp::Add, &[Operand::Reg(al), Operand::Imm(2 << 32)])
    } else {
        b.alu(ValueOp::Add, &[Operand::Reg(a0), Operand::Imm(2 << 32)])
    };
    b.store(MemSpace::Global, Operand::Reg(store_addr), Operand::Reg(x));
    b.alu_into(i, ValueOp::Add, &[Operand::Reg(i), Operand::Imm(1)]);
    let c = b.alu(ValueOp::CmpLt, &[Operand::Reg(i), Operand::Imm(8)]);
    b.loop_end_while(Operand::Reg(c));
    b.finish(vec![])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SimConfig::table1();
    let launch = LaunchConfig::new(256, 64);

    for scatter in [true, false] {
        let kernel = histogram(scatter);
        let trace = trace_kernel(&kernel, launch)?;
        let p = Gpumech::new(cfg.clone()).run(
            &PredictionRequest::from_trace(&trace)
                .policy(SchedulingPolicy::GreedyThenOldest)
                .model(gpumech::core::Model::MtMshrBand)
                .selection(gpumech::core::SelectionMethod::Clustering),
        )?;
        println!("{:<18} predicted CPI {:>7.2}   (QUEUE {:>6.2}, MSHR {:>6.2}, DRAM {:>6.2})",
            kernel.name, p.cpi_total(), p.cpi.queue, p.cpi.mshr, p.cpi.dram);
    }
    println!("\nthe gap between the two rows is what coalescing the histogram's\n\
              writes is worth on this machine — no timing simulation needed");
    Ok(())
}
