//! Early-stage design-space exploration — the use case GPUMech exists for.
//!
//! Sweeps 3 hardware axes (warps/core, MSHR entries, DRAM bandwidth) for a
//! divergent kernel *using only the model* (no cycle-level simulation),
//! then reports the cheapest configuration within 5% of the best predicted
//! performance. Because the trace and cache statistics are reused across
//! configurations that share cache geometry, each additional point costs
//! only a prediction (Section VI-D's re-exploration argument).
//!
//! Run with: `cargo run --release --example design_space [kernel]`

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::time::Instant;

use gpumech::core::{Gpumech, Model, PredictionRequest, SchedulingPolicy, SelectionMethod};
use gpumech::isa::SimConfig;
use gpumech::trace::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "parboil_spmv".to_string());
    let workload = workloads::by_name(&name)
        .unwrap_or_else(|| panic!("unknown kernel {name}"))
        .with_blocks(64);
    println!("kernel: {} — {}", workload.name, workload.description);

    let trace = workload.trace()?;
    let t0 = Instant::now();

    let mut results: Vec<(usize, usize, u32, f64)> = Vec::new();
    for warps in [8usize, 16, 32, 48] {
        for mshrs in [16usize, 32, 64, 128] {
            for bw in [96u32, 192, 384] {
                let cfg = SimConfig::table1()
                    .with_warps_per_core(warps)
                    .with_mshrs(mshrs)
                    .with_dram_bandwidth(f64::from(bw));
                let model = Gpumech::new(cfg);
                // Cache statistics depend on residency, so re-analyze per
                // warp count; the interval profiles are rebuilt with them.
                let analysis = model.analyze(&trace)?;
                let p = model.run(
                    &PredictionRequest::from_analysis(&analysis)
                        .policy(SchedulingPolicy::GreedyThenOldest)
                        .model(Model::MtMshrBand)
                        .selection(SelectionMethod::Clustering),
                )?;
                results.push((warps, mshrs, bw, p.cpi_total()));
            }
        }
    }
    let elapsed = t0.elapsed();

    results.sort_by(|a, b| a.3.total_cmp(&b.3));
    println!("\n{} configurations explored in {elapsed:.2?} (model only)\n", results.len());
    println!("{:<8}{:<8}{:<10}{:>8}", "warps", "mshrs", "GB/s", "CPI");
    for (warps, mshrs, bw, cpi) in results.iter().take(8) {
        println!("{warps:<8}{mshrs:<8}{bw:<10}{cpi:>8.2}");
    }

    // Cheapest config within 5% of the best: prefer fewer warps, fewer
    // MSHRs, less bandwidth (in that order of hardware cost).
    let best_cpi = results[0].3;
    let frugal = results
        .iter()
        .filter(|r| r.3 <= best_cpi * 1.05)
        .min_by_key(|r| (r.0, r.1, r.2))
        .expect("non-empty");
    println!(
        "\ncheapest within 5% of best: {} warps, {} MSHRs, {} GB/s (CPI {:.2}, best {:.2})",
        frugal.0, frugal.1, frugal.2, frugal.3, best_cpi
    );
    Ok(())
}
