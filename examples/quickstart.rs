//! Quickstart: predict a kernel's performance with GPUMech and compare
//! against the cycle-level oracle.
//!
//! Run with: `cargo run --release --example quickstart`

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use gpumech::core::{Gpumech, PredictionRequest, SchedulingPolicy};
use gpumech::isa::SimConfig;
use gpumech::timing::simulate;
use gpumech::trace::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Table I machine from the paper: 16 cores, 32 warps/core,
    // 32 KB L1 with 32 MSHRs, 768 KB L2, 192 GB/s DRAM.
    let cfg = SimConfig::table1();

    // One of the 40 bundled workloads (a coalesced streaming kernel).
    let workload = workloads::by_name("cfd_step_factor")
        .expect("bundled workload")
        .with_blocks(64); // shrink the grid so the example runs in seconds

    // GPUMech prediction: functional trace -> cache statistics -> interval
    // profiles -> representative warp -> multi-warp + contention models.
    let prediction = Gpumech::new(cfg.clone())
        .run(&PredictionRequest::from_workload(&workload).policy(SchedulingPolicy::RoundRobin))?;

    println!("kernel: {} — {}", workload.name, workload.description);
    println!("predicted CPI: {:.3}", prediction.cpi_total());
    println!("  CPI stack:");
    for (cat, value) in prediction.cpi.components() {
        if value > 0.0005 {
            println!("    {cat:<6} {value:>8.3}");
        }
    }

    // Validate against the detailed timing simulator, as the paper does.
    let trace = workload.trace()?;
    let oracle = simulate(&trace, &cfg, SchedulingPolicy::RoundRobin)?;
    let error = (prediction.cpi_total() - oracle.cpi()).abs() / oracle.cpi();
    println!("oracle CPI:    {:.3}", oracle.cpi());
    println!("relative error: {:.1}%", 100.0 * error);
    Ok(())
}
