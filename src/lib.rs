//! Facade crate for the GPUMech reproduction: one `use gpumech::...` path
//! to every layer of the stack.
//!
//! - [`isa`] — kernel IR, instruction kinds, machine configuration (Table I);
//! - [`analyze`] — static analysis and linting over the IR (CFG,
//!   reconvergence verification, divergence and coalescing prediction);
//! - [`trace`] — SIMT functional simulator and the 40-kernel workload
//!   library (the GPUOcelot substitute);
//! - [`mem`] — coalescer, caches, and the functional hierarchy simulator;
//! - [`obs`] — zero-dependency tracing, metrics, and pipeline profiling;
//! - [`timing`] — the cycle-level validation oracle (MacSim substitute);
//! - [`core`] — the interval-analysis performance model itself.
//!
//! See `examples/quickstart.rs` for the end-to-end flow.

pub use gpumech_analyze as analyze;
pub use gpumech_core as core;
pub use gpumech_isa as isa;
pub use gpumech_mem as mem;
pub use gpumech_obs as obs;
pub use gpumech_timing as timing;
pub use gpumech_trace as trace;
