//! Facade crate for the GPUMech reproduction: one `use gpumech::...` path
//! to every layer of the stack.
//!
//! - [`isa`] — kernel IR, instruction kinds, machine configuration (Table I);
//! - [`analyze`] — static analysis and linting over the IR (CFG,
//!   reconvergence verification, divergence and coalescing prediction);
//! - [`trace`] — SIMT functional simulator and the 40-kernel workload
//!   library (the GPUOcelot substitute);
//! - [`mem`] — coalescer, caches, and the functional hierarchy simulator;
//! - [`obs`] — zero-dependency tracing, metrics, and pipeline profiling;
//! - [`timing`] — the cycle-level validation oracle (MacSim substitute);
//! - [`core`] — the interval-analysis performance model itself;
//! - [`exec`] — the parallel batch-prediction engine and profile cache;
//! - [`perf`] — continuous performance telemetry: self-time attribution
//!   and folded-stack export over the span tree, the counting global
//!   allocator, and the `gpumech perf` benchmark suite with baselines;
//! - [`shard`] — fleet-scale sharded sweeps: deterministic job
//!   partitioning, verified shard merges, and the crash-tolerant
//!   multi-process supervisor behind `gpumech supervise`.
//!
//! The supported entry points are also re-exported at the crate root, so
//! most programs only need `use gpumech::{Gpumech, PredictionRequest, ...}`:
//!
//! ```
//! use gpumech::{Gpumech, PredictionRequest, SimConfig};
//!
//! let workload = gpumech::trace::workloads::by_name("sdk_vectoradd")
//!     .expect("bundled workload")
//!     .with_blocks(2);
//! let model = Gpumech::new(SimConfig::table1());
//! let prediction = model.run(&PredictionRequest::from_workload(&workload))?;
//! assert!(prediction.cpi_total() > 0.0);
//! # Ok::<(), gpumech::ModelError>(())
//! ```
//!
//! See `examples/quickstart.rs` for the end-to-end flow and
//! `examples/batch_sweep` usage in README.md for the parallel engine.

pub use gpumech_analyze as analyze;
pub use gpumech_core as core;
pub use gpumech_exec as exec;
pub use gpumech_isa as isa;
pub use gpumech_mem as mem;
pub use gpumech_obs as obs;
pub use gpumech_perf as perf;
pub use gpumech_shard as shard;
pub use gpumech_timing as timing;
pub use gpumech_trace as trace;

pub use gpumech_core::{
    Analysis, Gpumech, Model, ModelError, Prediction, PredictionRequest, SelectionMethod,
    Weighting,
};
pub use gpumech_exec::{BatchEngine, BatchJob, ExecError, ProfileCache};
pub use gpumech_isa::{SchedulingPolicy, SimConfig};
