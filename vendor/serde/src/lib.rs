//! Vendored, dependency-free stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace ships a minimal serialization framework with the same
//! surface the code actually uses: `#[derive(Serialize, Deserialize)]`,
//! `serde::{Serialize, Deserialize}` trait imports, `#[serde(default)]` /
//! `#[serde(default = "path")]` field attributes, and the `serde_json`
//! string front end.
//!
//! The data model is a single [`Value`] tree. `Serialize` lowers a Rust
//! value into a [`Value`]; `Deserialize` rebuilds it. Integers are kept
//! exact (`u64`/`i64` variants, not lossy `f64`), because traces store full
//! 64-bit addresses and hash words.
//!
//! Encoding conventions match real `serde` defaults so the JSON written by
//! this crate looks like what the real stack would emit:
//! - structs → objects keyed by field name;
//! - newtype structs → the inner value;
//! - unit enum variants → the variant name as a string;
//! - data-carrying variants → externally tagged `{"Variant": ...}`;
//! - `Option` → `null` / the inner value;
//! - `Duration` → `{"secs": u64, "nanos": u32}`.

pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: a JSON-shaped tree with exact integers.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (exact).
    U64(u64),
    /// Negative integer (exact).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as an ordered list of `(key, value)` pairs; order is the
    /// field declaration order, like `serde_json`'s default.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object by key. Returns `None` for non-objects.
    #[must_use]
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short human-readable name of the variant, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The value as an unsigned 64-bit integer, if exactly representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            #[allow(clippy::cast_sign_loss)]
            Value::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as a signed 64-bit integer, if exactly representable.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as a float (integers convert losslessly where possible).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        #[allow(clippy::cast_precision_loss)]
        match *self {
            Value::F64(v) => Some(v),
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            _ => None,
        }
    }
}

/// Deserialization error: a message plus a reverse field path for context.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// A free-form error.
    #[must_use]
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// A required field was absent.
    #[must_use]
    pub fn missing_field(field: &str) -> Self {
        Error { msg: format!("missing field `{field}`") }
    }

    /// An enum tag did not match any variant.
    #[must_use]
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        Error { msg: format!("unknown variant `{variant}` for enum `{ty}`") }
    }

    /// The value had the wrong shape for the target type.
    #[must_use]
    pub fn invalid_type(expected: &str, got: &Value) -> Self {
        Error { msg: format!("invalid type: expected {expected}, found {}", got.kind()) }
    }

    /// Wraps the error with the field (or variant) it occurred under.
    #[must_use]
    pub fn in_field(self, field: &str) -> Self {
        Error { msg: format!("{field}: {}", self.msg) }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Lowers a value into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Rebuilds a value from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Converts a [`Value`] tree back into `Self`.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the tree's shape does not match `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_u64().ok_or_else(|| Error::invalid_type(stringify!($t), value))?;
                <$t>::try_from(raw).map_err(|_| Error::custom(format!(
                    "integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let raw = value.as_u64().ok_or_else(|| Error::invalid_type("usize", value))?;
        usize::try_from(raw).map_err(|_| Error::custom(format!("integer {raw} out of range for usize")))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = i64::from(*self);
                if v >= 0 {
                    #[allow(clippy::cast_sign_loss)]
                    Value::U64(v as u64)
                } else {
                    Value::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_i64().ok_or_else(|| Error::invalid_type(stringify!($t), value))?;
                <$t>::try_from(raw).map_err(|_| Error::custom(format!(
                    "integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let raw = value.as_i64().ok_or_else(|| Error::invalid_type("isize", value))?;
        isize::try_from(raw).map_err(|_| Error::custom(format!("integer {raw} out of range for isize")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::invalid_type("f64", value))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        #[allow(clippy::cast_possible_truncation)]
        value.as_f64().map(|v| v as f32).ok_or_else(|| Error::invalid_type("f32", value))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::invalid_type("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::invalid_type("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::invalid_type("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::invalid_type("2-element array", other)),
        }
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(u64::from(self.subsec_nanos()))),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let secs = value
            .get_field("secs")
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::missing_field("secs"))?;
        let nanos = value
            .get_field("nanos")
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::missing_field("nanos"))?;
        let nanos = u32::try_from(nanos).map_err(|_| Error::custom("nanos out of range"))?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

/// Types usable as JSON map keys. JSON object keys are always strings, so
/// (as in real serde_json) integer keys round-trip through their decimal
/// string form.
pub trait MapKey: Ord + Sized {
    /// Renders the key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parses the key back from a JSON object key.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when `s` is not a valid rendering of `Self`.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| {
                    Error::custom(format!(
                        "invalid {} map key: {s:?}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| {
                    Ok((K::from_key(k)?, V::from_value(v).map_err(|e| e.in_field(k))?))
                })
                .collect(),
            other => Err(Error::invalid_type("object", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_stay_exact() {
        let big: u64 = (7 << 32) | 5;
        let v = big.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), big);
        assert_eq!((-3i64).to_value(), Value::I64(-3));
        assert_eq!(i64::from_value(&Value::U64(9)).unwrap(), 9);
        assert!(u32::from_value(&Value::U64(u64::MAX)).is_err());
    }

    #[test]
    fn option_round_trips_through_null() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::U64(4)).unwrap(), Some(4));
        assert_eq!(Some(4u32).to_value(), Value::U64(4));
        assert_eq!(None::<u32>.to_value(), Value::Null);
    }

    #[test]
    fn duration_encodes_like_real_serde() {
        let d = std::time::Duration::new(3, 500);
        let v = d.to_value();
        assert_eq!(v.get_field("secs"), Some(&Value::U64(3)));
        assert_eq!(v.get_field("nanos"), Some(&Value::U64(500)));
        assert_eq!(std::time::Duration::from_value(&v).unwrap(), d);
    }

    #[test]
    fn errors_carry_field_context() {
        let v = Value::Object(vec![("x".to_string(), Value::Str("no".to_string()))]);
        let err = u32::from_value(v.get_field("x").unwrap()).unwrap_err().in_field("x");
        assert!(err.to_string().contains("x:"), "{err}");
    }
}
