//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! The build environment has no crates.io access, so this macro is written
//! against `proc_macro` alone — no `syn`, no `quote`. The input item is
//! lexed into a small token tree, shape-parsed (named/tuple/unit structs,
//! unit/newtype/tuple/struct enum variants), and the impls are emitted as
//! formatted strings re-parsed into a `TokenStream`.
//!
//! Supported field attributes: `#[serde(default)]` and
//! `#[serde(default = "path")]`. Generics are deliberately unsupported —
//! the workspace derives only on concrete types.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Flattened token for shape parsing.
#[derive(Debug, Clone)]
enum Tok {
    Ident(String),
    Punct(char),
    Group(Delimiter, Vec<Tok>),
    Literal(String),
}

fn lex(ts: TokenStream) -> Vec<Tok> {
    ts.into_iter()
        .map(|tt| match tt {
            TokenTree::Ident(i) => Tok::Ident(i.to_string()),
            TokenTree::Punct(p) => Tok::Punct(p.as_char()),
            TokenTree::Group(g) => Tok::Group(g.delimiter(), lex(g.stream())),
            TokenTree::Literal(l) => Tok::Literal(l.to_string()),
        })
        .collect()
}

/// How a missing field is filled in during deserialization.
#[derive(Debug, Clone)]
enum FieldDefault {
    /// No default: missing field is an error.
    Required,
    /// `#[serde(default)]` — `Default::default()`.
    Std,
    /// `#[serde(default = "path")]` — call `path()`.
    Path(String),
}

#[derive(Debug)]
struct Field {
    name: String,
    default: FieldDefault,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Consumes attributes at `*i`, returning any `#[serde(default...)]` found.
fn skip_attrs(toks: &[Tok], i: &mut usize) -> FieldDefault {
    let mut default = FieldDefault::Required;
    while let Some(Tok::Punct('#')) = toks.get(*i) {
        *i += 1;
        let Some(Tok::Group(Delimiter::Bracket, inner)) = toks.get(*i) else {
            panic!("expected [...] after # in attribute");
        };
        *i += 1;
        if let Some(Tok::Ident(head)) = inner.first() {
            if head == "serde" {
                if let Some(Tok::Group(Delimiter::Parenthesis, args)) = inner.get(1) {
                    default = parse_serde_attr(args);
                }
            }
        }
    }
    default
}

fn parse_serde_attr(args: &[Tok]) -> FieldDefault {
    let mut j = 0;
    while j < args.len() {
        if let Tok::Ident(name) = &args[j] {
            if name == "default" {
                if let (Some(Tok::Punct('=')), Some(Tok::Literal(lit))) = (args.get(j + 1), args.get(j + 2)) {
                    let path = lit.trim_matches('"').to_string();
                    return FieldDefault::Path(path);
                }
                return FieldDefault::Std;
            }
            panic!("unsupported serde attribute `{name}` (vendored derive supports only `default`)");
        }
        j += 1;
    }
    FieldDefault::Required
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, ...) if present.
fn skip_vis(toks: &[Tok], i: &mut usize) {
    if let Some(Tok::Ident(id)) = toks.get(*i) {
        if id == "pub" {
            *i += 1;
            if let Some(Tok::Group(Delimiter::Parenthesis, _)) = toks.get(*i) {
                *i += 1;
            }
        }
    }
}

/// Skips a type expression: everything up to a top-level `,` (consumed) or
/// the end. Tracks `<`/`>` so commas inside generics don't split fields.
fn skip_type(toks: &[Tok], i: &mut usize) {
    let mut angle: i32 = 0;
    while let Some(t) = toks.get(*i) {
        match t {
            Tok::Punct(',') if angle == 0 => {
                *i += 1;
                return;
            }
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(toks: &[Tok]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = 0;
    loop {
        let default = skip_attrs(toks, &mut i);
        skip_vis(toks, &mut i);
        let Some(Tok::Ident(name)) = toks.get(i) else { break };
        let name = name.clone();
        i += 1;
        assert!(matches!(toks.get(i), Some(Tok::Punct(':'))), "expected `:` after field `{name}`");
        i += 1;
        skip_type(toks, &mut i);
        fields.push(Field { name, default });
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant payload.
fn count_tuple_fields(toks: &[Tok]) -> usize {
    let mut count = 0;
    let mut i = 0;
    loop {
        skip_attrs(toks, &mut i);
        skip_vis(toks, &mut i);
        if toks.get(i).is_none() {
            break;
        }
        skip_type(toks, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(toks: &[Tok]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    loop {
        skip_attrs(toks, &mut i);
        let Some(Tok::Ident(name)) = toks.get(i) else { break };
        let name = name.clone();
        i += 1;
        let kind = match toks.get(i) {
            Some(Tok::Group(Delimiter::Parenthesis, inner)) => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(inner))
            }
            Some(Tok::Group(Delimiter::Brace, inner)) => {
                i += 1;
                VariantKind::Struct(parse_named_fields(inner))
            }
            _ => VariantKind::Unit,
        };
        assert!(
            !matches!(toks.get(i), Some(Tok::Punct('='))),
            "explicit discriminants are not supported by the vendored derive"
        );
        if let Some(Tok::Punct(',')) = toks.get(i) {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks = lex(input);
    let mut i = 0;
    // Item-level attributes and visibility.
    let _ = skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let keyword = match toks.get(i) {
        Some(Tok::Ident(k)) if k == "struct" || k == "enum" => k.clone(),
        other => panic!("derive expects a struct or enum, found {other:?}"),
    };
    i += 1;
    let Some(Tok::Ident(name)) = toks.get(i) else { panic!("expected type name") };
    let name = name.clone();
    i += 1;
    assert!(
        !matches!(toks.get(i), Some(Tok::Punct('<'))),
        "generic types are not supported by the vendored derive ({name})"
    );
    let shape = if keyword == "struct" {
        match toks.get(i) {
            Some(Tok::Group(Delimiter::Brace, inner)) => Shape::NamedStruct(parse_named_fields(inner)),
            Some(Tok::Group(Delimiter::Parenthesis, inner)) => {
                let arity = count_tuple_fields(inner);
                if arity == 0 { Shape::UnitStruct } else { Shape::TupleStruct(arity) }
            }
            Some(Tok::Punct(';')) | None => Shape::UnitStruct,
            other => panic!("unexpected struct body: {other:?}"),
        }
    } else {
        match toks.get(i) {
            Some(Tok::Group(Delimiter::Brace, inner)) => Shape::Enum(parse_variants(inner)),
            other => panic!("unexpected enum body: {other:?}"),
        }
    };
    Item { name, shape }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut s = String::from(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
            );
            for f in fields {
                s.push_str(&format!(
                    "__fields.push((::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Value::Object(__fields)");
            s
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|k| format!("::serde::Serialize::to_value(&self.{k})")).collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => s.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),\n"
                    )),
                    VariantKind::Tuple(1) => s.push_str(&format!(
                        "{name}::{vname}(__f0) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Serialize::to_value(__f0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let pats: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let vals: Vec<String> =
                            pats.iter().map(|p| format!("::serde::Serialize::to_value({p})")).collect();
                        s.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Array(::std::vec![{}]))]),\n",
                            pats.join(", "),
                            vals.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let pats: Vec<String> =
                            fields.iter().map(|f| format!("{0}: __f_{0}", f.name)).collect();
                        let vals: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(__f_{0}))",
                                    f.name
                                )
                            })
                            .collect();
                        s.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Object(::std::vec![{}]))]),\n",
                            pats.join(", "),
                            vals.join(", ")
                        ));
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n fn to_value(&self) -> ::serde::Value {{\n {body}\n }}\n}}\n"
    )
}

/// Expression filling one named field from `__value`-like source `src`.
fn named_field_expr(f: &Field, src: &str) -> String {
    let missing = match &f.default {
        FieldDefault::Required => format!(
            "return ::std::result::Result::Err(::serde::Error::missing_field(\"{}\"))",
            f.name
        ),
        FieldDefault::Std => "::core::default::Default::default()".to_string(),
        FieldDefault::Path(path) => format!("{path}()"),
    };
    format!(
        "{0}: match {src}.get_field(\"{0}\") {{\n ::std::option::Option::Some(__v) => ::serde::Deserialize::from_value(__v).map_err(|__e| __e.in_field(\"{0}\"))?,\n ::std::option::Option::None => {missing},\n }}",
        f.name
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut s = format!(
                "if !matches!(__value, ::serde::Value::Object(_)) {{\n return ::std::result::Result::Err(::serde::Error::invalid_type(\"struct {name}\", __value));\n }}\n"
            );
            let inits: Vec<String> = fields.iter().map(|f| named_field_expr(f, "__value")).collect();
            s.push_str(&format!("::std::result::Result::Ok({name} {{\n{}\n}})", inits.join(",\n")));
            s
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                .collect();
            format!(
                "match __value {{\n ::serde::Value::Array(__items) if __items.len() == {n} => ::std::result::Result::Ok({name}({})),\n __other => ::std::result::Result::Err(::serde::Error::invalid_type(\"{n}-element array\", __other)),\n }}",
                inits.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n {body}\n }}\n}}\n"
    )
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.kind {
            VariantKind::Unit => {
                unit_arms.push_str(&format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"));
            }
            VariantKind::Tuple(1) => {
                data_arms.push_str(&format!(
                    "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(__inner).map_err(|__e| __e.in_field(\"{vname}\"))?)),\n"
                ));
            }
            VariantKind::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}]).map_err(|__e| __e.in_field(\"{vname}\"))?"))
                    .collect();
                data_arms.push_str(&format!(
                    "\"{vname}\" => match __inner {{\n ::serde::Value::Array(__items) if __items.len() == {n} => ::std::result::Result::Ok({name}::{vname}({})),\n __other => ::std::result::Result::Err(::serde::Error::invalid_type(\"tuple variant {vname}\", __other)),\n }},\n",
                    inits.join(", ")
                ));
            }
            VariantKind::Struct(fields) => {
                let inits: Vec<String> = fields.iter().map(|f| named_field_expr(f, "__inner")).collect();
                data_arms.push_str(&format!(
                    "\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{\n{}\n}}),\n",
                    inits.join(",\n")
                ));
            }
        }
    }
    format!(
        "match __value {{\n\
         ::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
         __other => ::std::result::Result::Err(::serde::Error::unknown_variant(__other, \"{name}\")),\n }},\n\
         ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
         let (__tag, __inner) = &__pairs[0];\n let _ = __inner;\n\
         match __tag.as_str() {{\n{data_arms}\
         __other => ::std::result::Result::Err(::serde::Error::unknown_variant(__other, \"{name}\")),\n }}\n }},\n\
         __other => ::std::result::Result::Err(::serde::Error::invalid_type(\"enum {name}\", __other)),\n }}"
    )
}

/// Derives `serde::Serialize` for a concrete (non-generic) struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive: generated Serialize impl failed to parse")
}

/// Derives `serde::Deserialize` for a concrete (non-generic) struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive: generated Deserialize impl failed to parse")
}
