//! Vendored, dependency-free stand-in for `serde_json`.
//!
//! Serializes the in-tree [`serde::Value`] model to JSON text and parses it
//! back. Covers the API surface the workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], and an [`Error`] that implements
//! `std::error::Error` so `?` works against `Box<dyn Error>`.
//!
//! Numbers: unsigned/negative integers are printed exactly; floats use
//! Rust's shortest-roundtrip formatting with a trailing `.0` forced on
//! integral values (so a float field stays visibly a float, as real
//! `serde_json` does). Non-finite floats serialize as `null`.

use serde::{Deserialize, Serialize, Value};

/// Serialization or parse error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Infallible for the supported data model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (2-space indent).
///
/// # Errors
///
/// Infallible for the supported data model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or on a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => write_seq(items.iter(), items.len(), '[', ']', out, indent, depth, |v, out, d| {
            write_value(v, out, indent, d);
        }),
        Value::Object(pairs) => {
            write_seq(pairs.iter(), pairs.len(), '{', '}', out, indent, depth, |(k, v), out, d| {
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(v, out, indent, d);
            });
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn write_seq<I: Iterator>(
    items: I,
    len: usize,
    open: char,
    close: char,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(I::Item, &mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(item, out, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_f64(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    // Keep float fields visibly floats, as real serde_json does.
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document into a [`Value`].
///
/// # Errors
///
/// Returns an [`Error`] with byte-offset context on malformed input.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("JSON nested too deeply"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 character (input is valid UTF-8
                    // because it came from a &str).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|&b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, Error> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair: expect \uXXXX low surrogate.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                self.eat(b'u')?;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>().map(Value::F64).map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            match text.parse::<i64>() {
                Ok(v) => Ok(Value::I64(v)),
                Err(_) => text.parse::<f64>().map(Value::F64).map_err(|_| self.err("invalid number")),
            }
        } else {
            match text.parse::<u64>() {
                Ok(v) => Ok(Value::U64(v)),
                Err(_) => text.parse::<f64>().map(Value::F64).map_err(|_| self.err("invalid number")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_exact_u64() {
        let addr: u64 = (3 << 32) | 0x1234;
        let json = to_string(&addr).unwrap();
        assert_eq!(json, addr.to_string());
        assert_eq!(from_str::<u64>(&json).unwrap(), addr);
    }

    #[test]
    fn compact_and_pretty_objects() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::U64(1)),
            ("b".to_string(), Value::Array(vec![Value::Bool(true), Value::Null])),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,null]}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1,"), "{pretty}");
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        assert_eq!(from_str::<f64>("1.0").unwrap(), 1.0);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{8}\u{c}\u{1}é漢".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""é😀""#).unwrap(), "é😀");
    }

    #[test]
    fn parse_errors_name_the_offset() {
        assert!(from_str::<u64>("12x").unwrap_err().to_string().contains("byte"));
        assert!(parse_value("{\"a\":}").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("").is_err());
    }

    #[test]
    fn negative_and_overflow_numbers() {
        assert_eq!(parse_value("-5").unwrap(), Value::I64(-5));
        assert_eq!(parse_value("18446744073709551615").unwrap(), Value::U64(u64::MAX));
        // Larger than u64 falls back to f64.
        assert!(matches!(parse_value("98446744073709551615").unwrap(), Value::F64(_)));
    }
}
